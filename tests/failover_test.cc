// Fault-recovery suite for the replicated-cluster path: FailoverTransport
// retry/failover/hedge semantics against a scripted in-process transport,
// the dynamic WorkerRegistry (register, heartbeat, death, re-register),
// the TcpTransport in-call reconnect, and the FaultyConnection transient
// window — the machinery that lets a query survive a dying replica
// without changing its answer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "distributed/coordinator.h"
#include "distributed/failover.h"
#include "distributed/message.h"
#include "distributed/worker.h"
#include "net/faulty_connection.h"
#include "net/tcp_transport.h"
#include "net/worker_registry.h"
#include "net/worker_server.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "util/rng.h"
#include "util/timer.h"

namespace isla {
namespace distributed {
namespace {

// --- Scripted inner transport -------------------------------------------

/// Per-channel behavior: fail the first `fail_first` calls with `error`,
/// delay every call by `delay_millis`, then answer "ch<channel>".
struct ChannelScript {
  uint64_t fail_first = 0;
  Status error = Status::IOError("scripted failure");
  int64_t delay_millis = 0;
};

class ScriptedTransport : public Transport {
 public:
  explicit ScriptedTransport(std::vector<ChannelScript> channels)
      : channels_(std::move(channels)) {
    for (size_t i = 0; i < channels_.size(); ++i) {
      calls_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    }
  }

  Result<std::string> Call(uint64_t channel,
                           const std::string& frame) override {
    (void)frame;
    if (channel >= channels_.size()) return Status::NotFound("no channel");
    const ChannelScript& script = channels_[channel];
    uint64_t call = calls_[channel]->fetch_add(1, std::memory_order_relaxed);
    if (script.delay_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(script.delay_millis));
    }
    if (call < script.fail_first) return script.error;
    return std::string("ch") + std::to_string(channel);
  }

  size_t size() const override { return channels_.size(); }

  uint64_t calls(uint64_t channel) const {
    return calls_[channel]->load(std::memory_order_relaxed);
  }

 private:
  std::vector<ChannelScript> channels_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> calls_;
};

FailoverOptions FastOptions() {
  FailoverOptions options;
  options.backoff_base_millis = 1;
  options.backoff_max_millis = 5;
  options.enable_hedging = false;  // Hedge tests opt back in.
  return options;
}

TEST(FailoverTransport, HealthyCallPassesThrough) {
  ScriptedTransport inner({{}, {}});
  FailoverTransport transport(&inner, {{0}, {1}}, FastOptions());
  auto r0 = transport.Call(0, "req");
  auto r1 = transport.Call(1, "req");
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r0, "ch0");
  EXPECT_EQ(*r1, "ch1");
  FailoverCounters c = transport.failover_snapshot();
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.failovers, 0u);
  EXPECT_EQ(c.exhausted, 0u);
}

TEST(FailoverTransport, FailsOverToSecondReplica) {
  // Shard 0's preferred replica (start = 0 % 2 = channel 0) always fails;
  // the failover retry must land on channel 1 and succeed.
  ScriptedTransport inner({{/*fail_first=*/1'000'000}, {}});
  FailoverTransport transport(&inner, {{0, 1}}, FastOptions());
  auto r = transport.Call(0, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch1");
  FailoverCounters c = transport.failover_snapshot();
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.failovers, 1u);
  EXPECT_EQ(c.exhausted, 0u);
}

TEST(FailoverTransport, RetriesTransientFailureOnSameReplica) {
  // Single replica, first call fails, second succeeds: a retry, not a
  // failover.
  ScriptedTransport inner(std::vector<ChannelScript>{{/*fail_first=*/1}});
  FailoverTransport transport(&inner, {{0}}, FastOptions());
  auto r = transport.Call(0, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch0");
  FailoverCounters c = transport.failover_snapshot();
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.failovers, 0u);
}

TEST(FailoverTransport, NonRetryableErrorPropagatesImmediately) {
  // A request-level failure (the worker answered it deliberately) must
  // not burn replicas: every replica would answer identically.
  ScriptedTransport inner(
      {{/*fail_first=*/1'000'000,
        Status::InvalidArgument("bad request")},
       {}});
  FailoverTransport transport(&inner, {{0, 1}}, FastOptions());
  auto r = transport.Call(0, "req");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
  EXPECT_EQ(inner.calls(0), 1u);
  EXPECT_EQ(inner.calls(1), 0u);
  EXPECT_EQ(transport.failover_snapshot().retries, 0u);
}

TEST(FailoverTransport, ExhaustsAllReplicasAndReportsLastError) {
  ScriptedTransport inner({{/*fail_first=*/1'000'000},
                           {/*fail_first=*/1'000'000}});
  FailoverOptions options = FastOptions();
  options.max_rounds = 2;
  FailoverTransport transport(&inner, {{0, 1}}, options);
  auto r = transport.Call(0, "req");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status();
  EXPECT_NE(r.status().message().find("every replica"), std::string::npos)
      << r.status();
  // max_rounds * 2 replicas = 4 attempts, alternating channels.
  EXPECT_EQ(inner.calls(0), 2u);
  EXPECT_EQ(inner.calls(1), 2u);
  FailoverCounters c = transport.failover_snapshot();
  EXPECT_EQ(c.exhausted, 1u);
  EXPECT_EQ(c.retries, 3u);
}

TEST(FailoverTransport, ReplicaPreferenceRotatesByShard) {
  // With two replicas per shard, shard 1 starts at replica index 1 % 2 =
  // 1 — its first call lands on channel 3, not channel 2.
  ScriptedTransport inner({{}, {}, {}, {}});
  FailoverTransport transport(&inner, {{0, 1}, {2, 3}}, FastOptions());
  auto r = transport.Call(1, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch3");
  EXPECT_EQ(inner.calls(2), 0u);
}

TEST(FailoverTransport, HedgesStragglerAndTakesFirstAnswer) {
  // The preferred replica stalls far past the hedge delay; the hedge to
  // the second replica answers instantly and must win the race.
  ScriptedTransport inner({{0, Status::OK(), /*delay_millis=*/400}, {}});
  FailoverOptions options = FastOptions();
  options.enable_hedging = true;
  options.hedge_delay_millis = 25;
  FailoverTransport transport(&inner, {{0, 1}}, options);
  Timer timer;
  auto r = transport.Call(0, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch1");
  // The win must come well before the straggler finishes.
  EXPECT_LT(timer.ElapsedMillis(), 350.0);
  FailoverCounters c = transport.failover_snapshot();
  EXPECT_EQ(c.hedges, 1u);
  EXPECT_EQ(c.hedge_wins, 1u);
  EXPECT_EQ(c.retries, 0u);
}

TEST(FailoverTransport, FastPrimaryNeverHedges) {
  ScriptedTransport inner({{}, {}});
  FailoverOptions options = FastOptions();
  options.enable_hedging = true;
  options.hedge_delay_millis = 200;
  FailoverTransport transport(&inner, {{0, 1}}, options);
  for (int i = 0; i < 5; ++i) {
    auto r = transport.Call(0, "req");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "ch0");
  }
  EXPECT_EQ(transport.failover_snapshot().hedges, 0u);
  EXPECT_EQ(inner.calls(1), 0u);
}

TEST(FailoverTransport, HedgeFailurePlusPrimarySuccessStillSucceeds) {
  // Primary is slow but good; hedge fails fast. The race must wait out
  // the primary instead of surfacing the hedge's error.
  ScriptedTransport inner(
      {{0, Status::OK(), /*delay_millis=*/120},
       {/*fail_first=*/1'000'000}});
  FailoverOptions options = FastOptions();
  options.enable_hedging = true;
  options.hedge_delay_millis = 20;
  FailoverTransport transport(&inner, {{0, 1}}, options);
  auto r = transport.Call(0, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch0");
  EXPECT_EQ(transport.failover_snapshot().hedge_wins, 0u);
}

TEST(FailoverTransport, RoundRobinPlacementShape) {
  // 2 shards over 4 channels at 2 replicas: shard s gets channels
  // {s, s + 2}.
  auto placement = RoundRobinPlacement(2, 4, 2);
  ASSERT_EQ(placement.size(), 2u);
  EXPECT_EQ(placement[0], (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(placement[1], (std::vector<uint64_t>{1, 3}));
  // Replica count is clamped to the channel count.
  auto tight = RoundRobinPlacement(3, 2, 5);
  for (const auto& replicas : tight) EXPECT_EQ(replicas.size(), 2u);
}

TEST(FailoverTransport, CoordinatorSurvivesOneDeadReplicaPerShard) {
  // End-to-end over loopback workers: every shard's preferred replica is
  // dead (always-failing channel), and the full AggregateAvg must still
  // complete — bit-identical to a run against an all-healthy cluster,
  // because the surviving replicas are the same Workers.
  // One Worker per channel; a channel's worker id is the shard it
  // replicates, and replicas of a shard are built identically — the
  // RNG-prefix property in miniature.
  auto make_workers = [](std::vector<uint64_t> shard_of_channel) {
    std::vector<std::unique_ptr<Worker>> workers;
    for (uint64_t shard : shard_of_channel) {
      workers.push_back(std::make_unique<Worker>(
          shard, std::make_shared<storage::GeneratorBlock>(
                     std::make_shared<stats::NormalDistribution>(100.0, 20.0),
                     50'000, SplitMix64::Hash(915, shard))));
    }
    return workers;
  };

  core::IslaOptions options;
  options.precision = 0.3;

  // Healthy cluster: 2 shards, loopback workers 0 and 1.
  LoopbackTransport healthy(make_workers({0, 1}));
  FailoverTransport healthy_failover(&healthy, {{0}, {1}}, FastOptions());
  Coordinator healthy_coordinator(&healthy_failover, options);
  auto healthy_result = healthy_coordinator.AggregateAvg();
  ASSERT_TRUE(healthy_result.ok()) << healthy_result.status();

  // Degraded cluster: channels 0/1 replicate shard 0, channels 2/3
  // replicate shard 1 (workers 0,1,0,1); a scripted wrapper kills each
  // shard's preferred channel.
  class DeadChannels : public Transport {
   public:
    DeadChannels(Transport* inner, std::vector<bool> dead)
        : inner_(inner), dead_(std::move(dead)) {}
    Result<std::string> Call(uint64_t channel,
                             const std::string& frame) override {
      if (dead_[channel]) return Status::IOError("replica down");
      return inner_->Call(channel, frame);
    }
    size_t size() const override { return inner_->size(); }

   private:
    Transport* inner_;
    std::vector<bool> dead_;
  };

  LoopbackTransport degraded_inner(make_workers({0, 0, 1, 1}));
  // Shard 0 prefers replica index 0 (channel 0); shard 1 prefers index
  // 1 % 2 = 1 (channel 3). Kill exactly the preferred ones.
  DeadChannels degraded(&degraded_inner, {true, false, false, true});
  FailoverTransport degraded_failover(&degraded, {{0, 1}, {2, 3}},
                                      FastOptions());
  Coordinator degraded_coordinator(&degraded_failover, options);
  auto degraded_result = degraded_coordinator.AggregateAvg();
  ASSERT_TRUE(degraded_result.ok()) << degraded_result.status();

  EXPECT_EQ(healthy_result->average, degraded_result->average);
  EXPECT_EQ(healthy_result->sum, degraded_result->sum);
  EXPECT_EQ(healthy_result->total_samples, degraded_result->total_samples);
  EXPECT_GT(degraded_result->failover.failovers, 0u);
  EXPECT_EQ(degraded_result->failover.exhausted, 0u);
}

// --- Registration / registry --------------------------------------------

std::unique_ptr<Worker> NormalWorker(uint64_t id, uint64_t rows) {
  return std::make_unique<Worker>(
      id, std::make_shared<storage::GeneratorBlock>(
              std::make_shared<stats::NormalDistribution>(100.0, 20.0), rows,
              SplitMix64::Hash(5150, id)));
}

net::WorkerServerOptions RegisteringOptions(uint16_t registry_port) {
  net::WorkerServerOptions options;
  options.coordinator_host = "127.0.0.1";
  options.coordinator_port = registry_port;
  options.heartbeat_millis = 100;
  return options;
}

TEST(WorkerRegistry, WorkersRegisterAndHeartbeat) {
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  net::WorkerServer a(NormalWorker(0, 10'000),
                      RegisteringOptions(registry.port()));
  net::WorkerServer b(NormalWorker(0, 10'000),
                      RegisteringOptions(registry.port()));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  ASSERT_TRUE(registry.WaitForShards(/*n_shards=*/1, /*min_replicas=*/2,
                                     /*timeout_millis=*/5'000));
  auto placement = registry.Placement();
  ASSERT_EQ(placement.size(), 1u);
  ASSERT_EQ(placement[0].size(), 2u);
  EXPECT_EQ(placement[0][0].block_rows, 10'000u);
  EXPECT_EQ(registry.registrations(), 2u);

  // Heartbeats keep flowing on the same connection.
  uint64_t before = a.heartbeats_acked();
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  EXPECT_GT(a.heartbeats_acked(), before);
  EXPECT_EQ(registry.registrations(), 2u);  // Heartbeats are not new regs.

  a.Stop();
  b.Stop();
  registry.Stop();
}

TEST(WorkerRegistry, DeadWorkerDropsOutAndRejoinsOnRestart) {
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  net::WorkerServerOptions options = RegisteringOptions(registry.port());
  auto worker_server =
      std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000), options);
  ASSERT_TRUE(worker_server->Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 1, 5'000));
  uint16_t worker_port = worker_server->port();

  // Kill the worker: the dropped registration socket must remove it from
  // the live placement promptly (no heartbeat-expiry wait needed).
  worker_server->Stop();
  worker_server.reset();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!registry.Placement().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(registry.Placement().empty());

  // Restart on the same port: the same (shard, host, port) identity
  // re-registers — the cluster healed without the registry restarting.
  options.port = worker_port;
  worker_server =
      std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000), options);
  ASSERT_TRUE(worker_server->Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 1, 5'000));
  EXPECT_EQ(registry.registrations(), 2u);

  worker_server->Stop();
  registry.Stop();
}

TEST(WorkerRegistry, WorkerStartedBeforeRegistryEventuallyRegisters) {
  // Grab a port for the registry, but start the worker first: its redial
  // backoff must pick the registry up once it binds.
  net::WorkerRegistryOptions registry_options;
  uint16_t registry_port = 0;
  {
    net::WorkerRegistry probe;
    ASSERT_TRUE(probe.Start().ok());
    registry_port = probe.port();
    probe.Stop();
  }

  net::WorkerServer worker_server(NormalWorker(0, 10'000),
                                  RegisteringOptions(registry_port));
  ASSERT_TRUE(worker_server.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  net::WorkerRegistryOptions late_options;
  late_options.port = registry_port;
  net::WorkerRegistry registry(late_options);
  ASSERT_TRUE(registry.Start().ok());
  EXPECT_TRUE(registry.WaitForShards(1, 1, 5'000));

  worker_server.Stop();
  registry.Stop();
}

// --- TcpTransport reconnect ---------------------------------------------

TEST(TcpTransportReconnect, SurvivesWorkerRestartBetweenQueries) {
  // Regression for the stale-connection poisoning: a worker daemon killed
  // and restarted between queries leaves the transport holding a dead
  // socket. With reconnect_attempts=1 the next call redials in-call and
  // succeeds; nothing surfaces to the caller.
  auto server = std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000));
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  net::TcpTransportOptions options;
  options.call_deadline_millis = 2'000;
  options.reconnect_attempts = 1;
  net::TcpTransport transport({{"127.0.0.1", port}}, options);

  PilotRequest request;
  request.query_id = 1;
  request.sample_count = 16;
  request.seed = 42;
  auto first = transport.Call(0, Encode(request));
  ASSERT_TRUE(first.ok()) << first.status();

  // Kill + restart on the same port (SO_REUSEADDR makes the rebind
  // immediate); the transport still caches the dead connection.
  server->Stop();
  server.reset();
  net::WorkerServerOptions restart_options;
  restart_options.port = port;
  server = std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000),
                                               restart_options);
  ASSERT_TRUE(server->Start().ok());

  auto second = transport.Call(0, Encode(request));
  ASSERT_TRUE(second.ok()) << second.status();
  // Replicas are deterministic: the restarted worker is the same worker,
  // so the answers are bit-identical.
  ASSERT_TRUE(DecodePilotResponse(*second).ok());
  EXPECT_EQ(*first, *second);
  server->Stop();
}

TEST(TcpTransportReconnect, DefaultStaysFailFast) {
  // Without opting in, the stale connection still fails the first call
  // after a restart (single-replica fault semantics are strict), and the
  // *next* call reconnects lazily.
  auto server = std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000));
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  net::TcpTransportOptions options;
  options.call_deadline_millis = 2'000;
  net::TcpTransport transport({{"127.0.0.1", port}}, options);

  PilotRequest request;
  request.query_id = 1;
  request.sample_count = 16;
  request.seed = 42;
  ASSERT_TRUE(transport.Call(0, Encode(request)).ok());

  server->Stop();
  server.reset();
  net::WorkerServerOptions restart_options;
  restart_options.port = port;
  server = std::make_unique<net::WorkerServer>(NormalWorker(0, 10'000),
                                               restart_options);
  ASSERT_TRUE(server->Start().ok());

  EXPECT_FALSE(transport.Call(0, Encode(request)).ok());
  EXPECT_TRUE(transport.Call(0, Encode(request)).ok());
  server->Stop();
}

// --- Transient fault window ---------------------------------------------

TEST(TransientFaults, FailFirstNWindowPassesAfterwards) {
  // The worker's connections share a server-wide send counter: send 0
  // passes (first call), sends [1, 2) fault, and everything after passes
  // — so a transport with one in-call reconnect rides out the window
  // deterministically.
  net::WorkerServerOptions options;
  options.fault = net::FaultMode::kCloseInsteadOfSend;
  options.fault_after_sends = 1;
  options.fault_first_n = 1;
  net::WorkerServer server(NormalWorker(0, 10'000), options);
  ASSERT_TRUE(server.Start().ok());

  net::TcpTransportOptions transport_options;
  transport_options.call_deadline_millis = 2'000;
  transport_options.reconnect_attempts = 1;
  net::TcpTransport transport({{"127.0.0.1", server.port()}},
                              transport_options);

  PilotRequest request;
  request.query_id = 1;
  request.sample_count = 16;
  request.seed = 42;
  auto first = transport.Call(0, Encode(request));   // Send 0: clean.
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = transport.Call(0, Encode(request));  // Send 1 faults;
  ASSERT_TRUE(second.ok()) << second.status();       // reconnect rides out.
  EXPECT_EQ(*first, *second);
  server.Stop();
}

TEST(TransientFaults, WindowSpansReconnectsViaSharedCounter) {
  // Without a reconnect budget each attempt is one visible failure, but
  // the shared counter still advances: attempt 2 fails (window), attempt
  // 3 passes. A per-connection counter would fault forever here.
  net::WorkerServerOptions options;
  options.fault = net::FaultMode::kCloseInsteadOfSend;
  options.fault_after_sends = 1;
  options.fault_first_n = 1;
  net::WorkerServer server(NormalWorker(0, 10'000), options);
  ASSERT_TRUE(server.Start().ok());

  net::TcpTransportOptions transport_options;
  transport_options.call_deadline_millis = 2'000;
  net::TcpTransport transport({{"127.0.0.1", server.port()}},
                              transport_options);

  PilotRequest request;
  request.query_id = 1;
  request.sample_count = 16;
  request.seed = 42;
  ASSERT_TRUE(transport.Call(0, Encode(request)).ok());
  EXPECT_FALSE(transport.Call(0, Encode(request)).ok());
  EXPECT_TRUE(transport.Call(0, Encode(request)).ok());
  server.Stop();
}

// --- Registry-driven failover, end to end over TCP ----------------------

TEST(ClusterEndToEnd, RegistryPlacementSurvivesReplicaDeath) {
  // Two replicas of one shard register dynamically; the preferred one is
  // killed; a query through the registry-derived placement must fail over
  // and produce the same bytes the surviving replica would produce alone.
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  auto replica_a = std::make_unique<net::WorkerServer>(
      NormalWorker(0, 20'000), RegisteringOptions(registry.port()));
  auto replica_b = std::make_unique<net::WorkerServer>(
      NormalWorker(0, 20'000), RegisteringOptions(registry.port()));
  ASSERT_TRUE(replica_a->Start().ok());
  ASSERT_TRUE(replica_b->Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 2, 5'000));

  auto build_placement = [&]() {
    std::vector<net::Endpoint> endpoints;
    std::vector<std::vector<uint64_t>> placement(1);
    auto live = registry.Placement();
    for (const auto& replica : live[0]) {
      placement[0].push_back(endpoints.size());
      endpoints.push_back({replica.host, replica.port});
    }
    return std::make_pair(endpoints, placement);
  };
  auto [endpoints, placement] = build_placement();
  ASSERT_EQ(endpoints.size(), 2u);

  // Kill the preferred replica (shard 0 prefers replica index 0, which is
  // registration order — replica_a registered first... or not; kill
  // whichever endpoint is preferred).
  uint16_t preferred_port = endpoints[placement[0][0]].port;
  if (replica_a->port() == preferred_port) {
    replica_a->Stop();
    replica_a.reset();
  } else {
    replica_b->Stop();
    replica_b.reset();
  }

  net::TcpTransportOptions transport_options;
  transport_options.call_deadline_millis = 2'000;
  transport_options.connect_timeout_millis = 1'000;
  transport_options.reconnect_attempts = 1;
  net::TcpTransport inner(endpoints, transport_options);
  FailoverOptions failover_options = FastOptions();
  FailoverTransport transport(&inner, placement, failover_options);

  core::IslaOptions options;
  options.precision = 0.3;
  Coordinator coordinator(&transport, options);
  auto degraded = coordinator.AggregateAvg();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_GT(degraded->failover.failovers, 0u);

  // Reference: the same query against the surviving replica alone.
  std::vector<std::unique_ptr<Worker>> survivors;
  survivors.push_back(NormalWorker(0, 20'000));
  LoopbackTransport reference(std::move(survivors));
  Coordinator reference_coordinator(&reference, options);
  auto healthy = reference_coordinator.AggregateAvg();
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->average, degraded->average);
  EXPECT_EQ(healthy->total_samples, degraded->total_samples);

  if (replica_a) replica_a->Stop();
  if (replica_b) replica_b->Stop();
  registry.Stop();
}

}  // namespace
}  // namespace distributed
}  // namespace isla
