// Unit tests for storage/file_block.h: the on-disk block format, CRC
// verification, and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "storage/file_block.h"
#include "util/rng.h"

namespace isla {
namespace storage {
namespace {

class FileBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("isla_fb_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileBlockTest, RoundTripSmall) {
  std::vector<double> values = {1.5, -2.5, 3.25, 0.0};
  ASSERT_TRUE(WriteBlockFile(Path("a.islb"), values).ok());
  auto block = FileBlock::Open(Path("a.islb"));
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ((*block)->size(), 4u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ((*block)->ValueAt(i), values[i]);
  }
}

TEST_F(FileBlockTest, RoundTripLargeCrossesChunks) {
  std::vector<double> values;
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.NextDouble() * 100);
  ASSERT_TRUE(WriteBlockFile(Path("b.islb"), values).ok());
  auto block = FileBlock::Open(Path("b.islb"));
  ASSERT_TRUE(block.ok());
  // Random access pattern forces chunk cache churn.
  Xoshiro256 access(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t idx = access.NextBounded(values.size());
    EXPECT_DOUBLE_EQ((*block)->ValueAt(idx), values[idx]);
  }
}

TEST_F(FileBlockTest, ReadRangeMatchesPayload) {
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(static_cast<double>(i));
  ASSERT_TRUE(WriteBlockFile(Path("c.islb"), values).ok());
  auto block = FileBlock::Open(Path("c.islb"));
  ASSERT_TRUE(block.ok());
  std::vector<double> out;
  ASSERT_TRUE((*block)->ReadRange(4000, 1000, &out).ok());
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_DOUBLE_EQ(out.front(), 4000.0);
  EXPECT_DOUBLE_EQ(out.back(), 4999.0);
}

TEST_F(FileBlockTest, ReadRangeOutOfBounds) {
  ASSERT_TRUE(WriteBlockFile(Path("d.islb"), std::vector<double>{1.0}).ok());
  auto block = FileBlock::Open(Path("d.islb"));
  ASSERT_TRUE(block.ok());
  std::vector<double> out;
  EXPECT_TRUE((*block)->ReadRange(0, 2, &out).IsOutOfRange());
}

TEST_F(FileBlockTest, EmptyPayloadRoundTrips) {
  ASSERT_TRUE(WriteBlockFile(Path("e.islb"), std::vector<double>{}).ok());
  auto block = FileBlock::Open(Path("e.islb"));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 0u);
}

TEST_F(FileBlockTest, MissingFileIsIOError) {
  auto block = FileBlock::Open(Path("nope.islb"));
  EXPECT_TRUE(block.status().IsIOError());
}

TEST_F(FileBlockTest, BadMagicIsCorruption) {
  std::ofstream f(Path("bad.islb"), std::ios::binary);
  f << "XXXXGARBAGEGARBAGEGARBAGE";
  f.close();
  auto block = FileBlock::Open(Path("bad.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, TruncatedHeaderIsCorruption) {
  std::ofstream f(Path("trunc.islb"), std::ios::binary);
  f << "IS";
  f.close();
  auto block = FileBlock::Open(Path("trunc.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, FlippedPayloadBitFailsCrc) {
  std::vector<double> values(100, 1.0);
  ASSERT_TRUE(WriteBlockFile(Path("flip.islb"), values).ok());
  // Flip one payload byte in place.
  std::fstream f(Path("flip.islb"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16 + 50 * 8 + 3);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(16 + 50 * 8 + 3);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  auto block = FileBlock::Open(Path("flip.islb"));
  EXPECT_TRUE(block.status().IsCorruption())
      << "expected CRC mismatch, got: " << block.status();
}

TEST_F(FileBlockTest, TruncatedPayloadIsCorruption) {
  std::vector<double> values(100, 2.0);
  ASSERT_TRUE(WriteBlockFile(Path("short.islb"), values).ok());
  std::filesystem::resize_file(Path("short.islb"), 16 + 40 * 8);
  auto block = FileBlock::Open(Path("short.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, LoadToMemoryCopiesEverything) {
  std::vector<double> values = {5.0, 6.0, 7.0};
  ASSERT_TRUE(WriteBlockFile(Path("mem.islb"), values).ok());
  auto block = FileBlock::Open(Path("mem.islb"));
  ASSERT_TRUE(block.ok());
  auto mem = (*block)->LoadToMemory();
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->values(), values);
}

TEST_F(FileBlockTest, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST_F(FileBlockTest, Crc32EmptyIsZero) {
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(FileBlockTest, GatherAtSpansChunkBoundaries) {
  // 3 chunks' worth of rows (chunk = 4096): indices deliberately hit the
  // first/last row of each chunk plus interior points, unsorted and with a
  // repeat, so the sorted single-pass read crosses every boundary.
  std::vector<double> values;
  for (int i = 0; i < 3 * 4096 + 17; ++i) values.push_back(i * 0.5);
  ASSERT_TRUE(WriteBlockFile(Path("g.islb"), values).ok());
  auto block = FileBlock::Open(Path("g.islb"));
  ASSERT_TRUE(block.ok());

  std::vector<uint64_t> indices = {8191, 0,    4096, 12304, 4095,
                                   8192, 4096, 12288, 1};
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], values[indices[i]]) << "slot " << i;
  }
}

TEST_F(FileBlockTest, GatherAtMatchesValueAtOnRandomBatches) {
  std::vector<double> values;
  Xoshiro256 data_rng(77);
  for (int i = 0; i < 10000; ++i) values.push_back(data_rng.NextDouble());
  ASSERT_TRUE(WriteBlockFile(Path("r.islb"), values).ok());
  auto block = FileBlock::Open(Path("r.islb"));
  ASSERT_TRUE(block.ok());

  Xoshiro256 rng(78);
  std::vector<uint64_t> indices;
  for (int i = 0; i < 500; ++i) indices.push_back(rng.NextBounded(10000));
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], values[indices[i]]);
  }
}

TEST_F(FileBlockTest, GatherAtEdgeCases) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  ASSERT_TRUE(WriteBlockFile(Path("e.islb"), values).ok());
  auto block = FileBlock::Open(Path("e.islb"));
  ASSERT_TRUE(block.ok());

  double sentinel = -1.0;
  ASSERT_TRUE((*block)->GatherAt({}, &sentinel).ok());
  EXPECT_DOUBLE_EQ(sentinel, -1.0);

  std::vector<uint64_t> oor = {0, 3};
  std::vector<double> out(oor.size());
  EXPECT_TRUE((*block)->GatherAt(oor, out.data()).IsOutOfRange());
  EXPECT_TRUE((*block)->GatherAt(oor, nullptr).IsInvalidArgument());
}

TEST_F(FileBlockTest, ReadRangeEdgeCases) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(WriteBlockFile(Path("rr.islb"), values).ok());
  auto block = FileBlock::Open(Path("rr.islb"));
  ASSERT_TRUE(block.ok());

  std::vector<double> out;
  ASSERT_TRUE((*block)->ReadRange(4, 0, &out).ok());  // Empty tail read.
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE((*block)->ReadRange(2, 2, &out).ok());  // Exact tail.
  EXPECT_EQ(out, (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE((*block)->ReadRange(2, 3, &out).IsOutOfRange());
  EXPECT_TRUE((*block)->ReadRange(5, 0, &out).IsOutOfRange());
}

TEST_F(FileBlockTest, ValueAtStaysCorrectAfterGatherAt) {
  // GatherAt shares the chunk cache with ValueAt; interleaving them must
  // not serve stale chunks.
  std::vector<double> values;
  for (int i = 0; i < 9000; ++i) values.push_back(static_cast<double>(i));
  ASSERT_TRUE(WriteBlockFile(Path("m.islb"), values).ok());
  auto block = FileBlock::Open(Path("m.islb"));
  ASSERT_TRUE(block.ok());

  EXPECT_DOUBLE_EQ((*block)->ValueAt(100), 100.0);
  std::vector<uint64_t> indices = {8000, 50};
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  EXPECT_DOUBLE_EQ(out[0], 8000.0);
  EXPECT_DOUBLE_EQ((*block)->ValueAt(4200), 4200.0);
}

TEST_F(FileBlockTest, OverwriteReplacesContent) {
  ASSERT_TRUE(WriteBlockFile(Path("o.islb"), std::vector<double>{1.0}).ok());
  ASSERT_TRUE(
      WriteBlockFile(Path("o.islb"), std::vector<double>{9.0, 8.0}).ok());
  auto block = FileBlock::Open(Path("o.islb"));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 2u);
  EXPECT_DOUBLE_EQ((*block)->ValueAt(0), 9.0);
}

}  // namespace
}  // namespace storage
}  // namespace isla
