// Unit tests for storage/file_block.h: the on-disk block format, CRC
// verification, and corruption handling.

#include <gtest/gtest.h>

#include <sys/types.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "storage/file_block.h"
#include "util/rng.h"

namespace isla {
namespace storage {
namespace {

class FileBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("isla_fb_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(FileBlockTest, RoundTripSmall) {
  std::vector<double> values = {1.5, -2.5, 3.25, 0.0};
  ASSERT_TRUE(WriteBlockFile(Path("a.islb"), values).ok());
  auto block = FileBlock::Open(Path("a.islb"));
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ((*block)->size(), 4u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ((*block)->ValueAt(i), values[i]);
  }
}

TEST_F(FileBlockTest, RoundTripLargeCrossesChunks) {
  std::vector<double> values;
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.NextDouble() * 100);
  ASSERT_TRUE(WriteBlockFile(Path("b.islb"), values).ok());
  auto block = FileBlock::Open(Path("b.islb"));
  ASSERT_TRUE(block.ok());
  // Random access pattern forces chunk cache churn.
  Xoshiro256 access(2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t idx = access.NextBounded(values.size());
    EXPECT_DOUBLE_EQ((*block)->ValueAt(idx), values[idx]);
  }
}

TEST_F(FileBlockTest, ReadRangeMatchesPayload) {
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(static_cast<double>(i));
  ASSERT_TRUE(WriteBlockFile(Path("c.islb"), values).ok());
  auto block = FileBlock::Open(Path("c.islb"));
  ASSERT_TRUE(block.ok());
  std::vector<double> out;
  ASSERT_TRUE((*block)->ReadRange(4000, 1000, &out).ok());
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_DOUBLE_EQ(out.front(), 4000.0);
  EXPECT_DOUBLE_EQ(out.back(), 4999.0);
}

TEST_F(FileBlockTest, ReadRangeOutOfBounds) {
  ASSERT_TRUE(WriteBlockFile(Path("d.islb"), std::vector<double>{1.0}).ok());
  auto block = FileBlock::Open(Path("d.islb"));
  ASSERT_TRUE(block.ok());
  std::vector<double> out;
  EXPECT_TRUE((*block)->ReadRange(0, 2, &out).IsOutOfRange());
}

TEST_F(FileBlockTest, EmptyPayloadRoundTrips) {
  ASSERT_TRUE(WriteBlockFile(Path("e.islb"), std::vector<double>{}).ok());
  auto block = FileBlock::Open(Path("e.islb"));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 0u);
}

TEST_F(FileBlockTest, MissingFileIsIOError) {
  auto block = FileBlock::Open(Path("nope.islb"));
  EXPECT_TRUE(block.status().IsIOError());
}

TEST_F(FileBlockTest, BadMagicIsCorruption) {
  std::ofstream f(Path("bad.islb"), std::ios::binary);
  f << "XXXXGARBAGEGARBAGEGARBAGE";
  f.close();
  auto block = FileBlock::Open(Path("bad.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, TruncatedHeaderIsCorruption) {
  std::ofstream f(Path("trunc.islb"), std::ios::binary);
  f << "IS";
  f.close();
  auto block = FileBlock::Open(Path("trunc.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, FlippedPayloadBitFailsCrc) {
  std::vector<double> values(100, 1.0);
  ASSERT_TRUE(WriteBlockFile(Path("flip.islb"), values).ok());
  // Flip one payload byte in place.
  std::fstream f(Path("flip.islb"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16 + 50 * 8 + 3);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(16 + 50 * 8 + 3);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  auto block = FileBlock::Open(Path("flip.islb"));
  EXPECT_TRUE(block.status().IsCorruption())
      << "expected CRC mismatch, got: " << block.status();
}

TEST_F(FileBlockTest, TruncatedPayloadIsCorruption) {
  std::vector<double> values(100, 2.0);
  ASSERT_TRUE(WriteBlockFile(Path("short.islb"), values).ok());
  std::filesystem::resize_file(Path("short.islb"), 16 + 40 * 8);
  auto block = FileBlock::Open(Path("short.islb"));
  EXPECT_TRUE(block.status().IsCorruption());
}

TEST_F(FileBlockTest, LoadToMemoryCopiesEverything) {
  std::vector<double> values = {5.0, 6.0, 7.0};
  ASSERT_TRUE(WriteBlockFile(Path("mem.islb"), values).ok());
  auto block = FileBlock::Open(Path("mem.islb"));
  ASSERT_TRUE(block.ok());
  auto mem = (*block)->LoadToMemory();
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->values(), values);
}

TEST_F(FileBlockTest, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST_F(FileBlockTest, Crc32EmptyIsZero) {
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST_F(FileBlockTest, Crc32PinnedVectors) {
  // Pins the CRC across implementation changes (the slice-by-8 rewrite
  // must keep the block format byte-compatible). Values independently
  // computed with zlib's crc32, the same IEEE polynomial.
  std::vector<unsigned char> bytes(256);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32(bytes.data(), bytes.size()), 0x29058c73u);

  std::vector<unsigned char> big;
  for (int rep = 0; rep < 37; ++rep) {
    big.insert(big.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(Crc32(big.data(), big.size()), 0x97ac7cf5u);  // 9472 bytes

  const unsigned char zeros[7] = {0};  // shorter than one 8-byte slice
  EXPECT_EQ(Crc32(zeros, sizeof(zeros)), 0x9d6cdf7eu);

  const char* text = "ISLA block format stays pinned forever";
  EXPECT_EQ(Crc32(text, 38), 0x6b51c147u);
}

TEST_F(FileBlockTest, Crc32IncrementalMatchesOneShot) {
  // Arbitrary split points, including mid-slice ones, must agree with the
  // one-shot CRC: FileBlock::Open streams the payload in 64 KiB chunks.
  std::vector<unsigned char> data(3000);
  Xoshiro256 rng(5);
  for (auto& b : data) b = static_cast<unsigned char>(rng.NextBounded(256));
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{1}, size_t{7}, size_t{8}, size_t{13},
                       size_t{1024}, size_t{2999}}) {
    uint32_t state = kCrc32Init;
    state = Crc32Update(state, data.data(), split);
    state = Crc32Update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Finalize(state), whole) << "split at " << split;
  }
}

TEST_F(FileBlockTest, PayloadOffsetArithmeticIs64Bit) {
  // Regression for the old static_cast<long> seek offsets: on ILP32
  // platforms `long` is 32 bits and rows past 2 GiB of payload truncated.
  // The offset helper must stay exact in uint64_t and fit the off_t that
  // fseeko consumes.
  EXPECT_EQ(BlockPayloadByteOffset(0), 16u);
  EXPECT_EQ(BlockPayloadByteOffset(1), 24u);
  // Row 400M sits at 3.2 GB — past INT32_MAX, where a long cast on ILP32
  // went negative; row 600M is past UINT32_MAX, where even an unsigned
  // 32-bit cast wraps.
  EXPECT_EQ(BlockPayloadByteOffset(400'000'000ULL), 3'200'000'016ULL);
  EXPECT_GT(BlockPayloadByteOffset(400'000'000ULL), uint64_t{1} << 31);
  EXPECT_EQ(BlockPayloadByteOffset(600'000'000ULL), 4'800'000'016ULL);
  EXPECT_GT(BlockPayloadByteOffset(600'000'000ULL), uint64_t{1} << 32);
  // 1e12 rows (the paper's largest experiments) still compute exactly.
  EXPECT_EQ(BlockPayloadByteOffset(1'000'000'000'000ULL),
            8'000'000'000'016ULL);
  static_assert(sizeof(off_t) == 8,
                "fseeko must take 64-bit offsets on this platform");
}

TEST_F(FileBlockTest, MmapAndStdioPathsAreBitIdentical) {
  std::vector<double> values;
  Xoshiro256 rng(21);
  for (int i = 0; i < 3 * 4096 + 5; ++i) {
    values.push_back(rng.NextDouble() * 1000 - 500);
  }
  ASSERT_TRUE(WriteBlockFile(Path("par.islb"), values).ok());
  auto mm = FileBlock::Open(Path("par.islb"), FileBlockOptions{true});
  auto io = FileBlock::Open(Path("par.islb"), FileBlockOptions{false});
  ASSERT_TRUE(mm.ok());
  ASSERT_TRUE(io.ok());
  EXPECT_FALSE((*io)->mmapped());
  EXPECT_TRUE((*io)->ContiguousView().empty());
  if (!(*mm)->mmapped()) GTEST_SKIP() << "mmap unavailable";
  ASSERT_EQ((*mm)->ContiguousView().size(), values.size());

  // ValueAt parity at chunk edges and interior points.
  for (uint64_t idx : {uint64_t{0}, uint64_t{4095}, uint64_t{4096},
                       uint64_t{8191}, uint64_t{12292}}) {
    EXPECT_EQ((*mm)->ValueAt(idx), (*io)->ValueAt(idx)) << idx;
    EXPECT_EQ((*mm)->ValueAt(idx), values[idx]) << idx;
  }

  // GatherAt parity on unsorted, duplicated random batches.
  Xoshiro256 pick(22);
  std::vector<uint64_t> indices;
  for (int i = 0; i < 2000; ++i) indices.push_back(pick.NextBounded(values.size()));
  indices.push_back(indices.front());  // guaranteed duplicate
  std::vector<double> got_mm(indices.size());
  std::vector<double> got_io(indices.size());
  ASSERT_TRUE((*mm)->GatherAt(indices, got_mm.data()).ok());
  ASSERT_TRUE((*io)->GatherAt(indices, got_io.data()).ok());
  EXPECT_EQ(got_mm, got_io);

  // ReadRange parity, including the empty tail read.
  std::vector<double> r_mm;
  std::vector<double> r_io;
  ASSERT_TRUE((*mm)->ReadRange(4090, 100, &r_mm).ok());
  ASSERT_TRUE((*io)->ReadRange(4090, 100, &r_io).ok());
  EXPECT_EQ(r_mm, r_io);
  ASSERT_TRUE((*mm)->ReadRange(values.size(), 0, &r_mm).ok());
  EXPECT_TRUE(r_mm.empty());
  EXPECT_TRUE((*mm)->ReadRange(0, values.size() + 1, &r_mm).IsOutOfRange());
  const std::vector<uint64_t> oor = {values.size()};
  EXPECT_TRUE((*mm)->GatherAt(oor, got_mm.data()).IsOutOfRange());
}

TEST_F(FileBlockTest, MmapGatherIsSafeUnderConcurrency) {
  // The mmap read path takes no lock; hammer it from several threads and
  // verify every thread sees exactly the payload values.
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(static_cast<double>(i));
  ASSERT_TRUE(WriteBlockFile(Path("mt.islb"), values).ok());
  auto block = FileBlock::Open(Path("mt.islb"));
  ASSERT_TRUE(block.ok());
  if (!(*block)->mmapped()) GTEST_SKIP() << "mmap unavailable";

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(100 + static_cast<uint64_t>(t));
      std::vector<uint64_t> indices(512);
      std::vector<double> out(indices.size());
      for (int round = 0; round < 50; ++round) {
        for (auto& i : indices) i = rng.NextBounded(values.size());
        if (!(*block)->GatherAt(indices, out.data()).ok()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < indices.size(); ++i) {
          if (out[i] != values[indices[i]]) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(FileBlockTest, GatherAtSpansChunkBoundaries) {
  // 3 chunks' worth of rows (chunk = 4096): indices deliberately hit the
  // first/last row of each chunk plus interior points, unsorted and with a
  // repeat, so the sorted single-pass read crosses every boundary.
  std::vector<double> values;
  for (int i = 0; i < 3 * 4096 + 17; ++i) values.push_back(i * 0.5);
  ASSERT_TRUE(WriteBlockFile(Path("g.islb"), values).ok());
  auto block = FileBlock::Open(Path("g.islb"));
  ASSERT_TRUE(block.ok());

  std::vector<uint64_t> indices = {8191, 0,    4096, 12304, 4095,
                                   8192, 4096, 12288, 1};
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], values[indices[i]]) << "slot " << i;
  }
}

TEST_F(FileBlockTest, GatherAtMatchesValueAtOnRandomBatches) {
  std::vector<double> values;
  Xoshiro256 data_rng(77);
  for (int i = 0; i < 10000; ++i) values.push_back(data_rng.NextDouble());
  ASSERT_TRUE(WriteBlockFile(Path("r.islb"), values).ok());
  auto block = FileBlock::Open(Path("r.islb"));
  ASSERT_TRUE(block.ok());

  Xoshiro256 rng(78);
  std::vector<uint64_t> indices;
  for (int i = 0; i < 500; ++i) indices.push_back(rng.NextBounded(10000));
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], values[indices[i]]);
  }
}

TEST_F(FileBlockTest, GatherAtEdgeCases) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  ASSERT_TRUE(WriteBlockFile(Path("e.islb"), values).ok());
  auto block = FileBlock::Open(Path("e.islb"));
  ASSERT_TRUE(block.ok());

  double sentinel = -1.0;
  ASSERT_TRUE((*block)->GatherAt({}, &sentinel).ok());
  EXPECT_DOUBLE_EQ(sentinel, -1.0);

  std::vector<uint64_t> oor = {0, 3};
  std::vector<double> out(oor.size());
  EXPECT_TRUE((*block)->GatherAt(oor, out.data()).IsOutOfRange());
  EXPECT_TRUE((*block)->GatherAt(oor, nullptr).IsInvalidArgument());
}

TEST_F(FileBlockTest, ReadRangeEdgeCases) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(WriteBlockFile(Path("rr.islb"), values).ok());
  auto block = FileBlock::Open(Path("rr.islb"));
  ASSERT_TRUE(block.ok());

  std::vector<double> out;
  ASSERT_TRUE((*block)->ReadRange(4, 0, &out).ok());  // Empty tail read.
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE((*block)->ReadRange(2, 2, &out).ok());  // Exact tail.
  EXPECT_EQ(out, (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE((*block)->ReadRange(2, 3, &out).IsOutOfRange());
  EXPECT_TRUE((*block)->ReadRange(5, 0, &out).IsOutOfRange());
}

TEST_F(FileBlockTest, ValueAtStaysCorrectAfterGatherAt) {
  // GatherAt shares the chunk cache with ValueAt; interleaving them must
  // not serve stale chunks.
  std::vector<double> values;
  for (int i = 0; i < 9000; ++i) values.push_back(static_cast<double>(i));
  ASSERT_TRUE(WriteBlockFile(Path("m.islb"), values).ok());
  auto block = FileBlock::Open(Path("m.islb"));
  ASSERT_TRUE(block.ok());

  EXPECT_DOUBLE_EQ((*block)->ValueAt(100), 100.0);
  std::vector<uint64_t> indices = {8000, 50};
  std::vector<double> out(indices.size());
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  EXPECT_DOUBLE_EQ(out[0], 8000.0);
  EXPECT_DOUBLE_EQ((*block)->ValueAt(4200), 4200.0);
}

TEST_F(FileBlockTest, OverwriteReplacesContent) {
  ASSERT_TRUE(WriteBlockFile(Path("o.islb"), std::vector<double>{1.0}).ok());
  ASSERT_TRUE(
      WriteBlockFile(Path("o.islb"), std::vector<double>{9.0, 8.0}).ok());
  auto block = FileBlock::Open(Path("o.islb"));
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 2u);
  EXPECT_DOUBLE_EQ((*block)->ValueAt(0), 9.0);
}

}  // namespace
}  // namespace storage
}  // namespace isla
