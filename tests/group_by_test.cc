// Unit tests for core/group_by.h — the predicated GROUP BY engine: reduced
// moment merging, predicate semantics, multi-column gather alignment,
// estimator correctness, and the bit-identical-for-any-parallelism
// invariant.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "core/group_by.h"
#include "storage/block.h"
#include "storage/table.h"
#include "util/rng.h"

namespace isla {
namespace core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(EvalPredicate, TruthTable) {
  EXPECT_TRUE(EvalPredicate(PredicateOp::kEq, 3.0, 3.0));
  EXPECT_FALSE(EvalPredicate(PredicateOp::kEq, 3.0, 4.0));
  EXPECT_TRUE(EvalPredicate(PredicateOp::kNe, 3.0, 4.0));
  EXPECT_FALSE(EvalPredicate(PredicateOp::kNe, 3.0, 3.0));
  EXPECT_TRUE(EvalPredicate(PredicateOp::kLt, 2.0, 3.0));
  EXPECT_FALSE(EvalPredicate(PredicateOp::kLt, 3.0, 3.0));
  EXPECT_TRUE(EvalPredicate(PredicateOp::kLe, 3.0, 3.0));
  EXPECT_TRUE(EvalPredicate(PredicateOp::kGt, 4.0, 3.0));
  EXPECT_FALSE(EvalPredicate(PredicateOp::kGt, 3.0, 3.0));
  EXPECT_TRUE(EvalPredicate(PredicateOp::kGe, 3.0, 3.0));
}

TEST(EvalPredicate, NanIsNeverTrue) {
  for (PredicateOp op : {PredicateOp::kEq, PredicateOp::kNe, PredicateOp::kLt,
                         PredicateOp::kLe, PredicateOp::kGt,
                         PredicateOp::kGe}) {
    EXPECT_FALSE(EvalPredicate(op, kNaN, 1.0));
    EXPECT_FALSE(EvalPredicate(op, 1.0, kNaN));
  }
}

TEST(EvalPredicateMask, MatchesScalarEvaluatorOnNanData) {
  // The branchless mask and the scalar evaluator are two implementations
  // of the same SQL semantics; sweep all operators over a vector mixing
  // NaN, infinities, signed zeros and ordinary values, against NaN and
  // ordinary literals.
  const std::vector<double> lhs = {
      kNaN, 1.0,  -1.0, 0.0,  -0.0, 3.5, kNaN,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(), 3.5};
  const double literals[] = {3.5, 0.0, kNaN,
                             std::numeric_limits<double>::infinity()};
  std::vector<uint8_t> mask(lhs.size());
  for (PredicateOp op : {PredicateOp::kEq, PredicateOp::kNe, PredicateOp::kLt,
                         PredicateOp::kLe, PredicateOp::kGt,
                         PredicateOp::kGe}) {
    for (double lit : literals) {
      EvalPredicateMask(op, lhs, lit, mask.data());
      for (size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(mask[i] != 0, EvalPredicate(op, lhs[i], lit))
            << PredicateOpName(op) << " lhs[" << i << "]=" << lhs[i]
            << " lit=" << lit;
      }
    }
  }
}

TEST(RouteGroupedBatch, AgreesWithScalarRouterOnNanData) {
  // Same rows through the mask/batch router and the scalar row router —
  // group contents must match exactly, including NaN-pred and NaN-key
  // drops (values stay finite so moment equality is checkable with ==).
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<double> preds = {0.5, kNaN, 2.0, 2.0, -1.0, 3.0};
  const std::vector<double> keys = {0.0, 1.0, 0.0, kNaN, 1.0, 0.0};
  const double literal = 1.0;
  const PredicateOp op = PredicateOp::kGe;

  GroupMoments scalar_all;
  GroupMap scalar_groups;
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(RouteGroupedRow(&preds[i], op, literal, &keys[i], values[i],
                                &scalar_all, &scalar_groups)
                    .ok());
  }

  std::vector<uint8_t> mask(values.size());
  EvalPredicateMask(op, preds, literal, mask.data());
  GroupMoments batch_all;
  GroupMap batch_groups;
  ASSERT_TRUE(RouteGroupedBatch(values, mask.data(), keys.data(), &batch_all,
                                &batch_groups)
                  .ok());

  EXPECT_EQ(batch_all.n, scalar_all.n);
  EXPECT_EQ(batch_all.mean, scalar_all.mean);
  EXPECT_EQ(batch_all.m2, scalar_all.m2);
  ASSERT_EQ(batch_groups.size(), scalar_groups.size());
  for (const auto& [key, moments] : scalar_groups) {
    auto it = batch_groups.find(key);
    ASSERT_NE(it, batch_groups.end()) << key;
    EXPECT_EQ(it->second.n, moments.n);
    EXPECT_EQ(it->second.mean, moments.mean);
    EXPECT_EQ(it->second.m2, moments.m2);
  }

  // Null mask means "no predicate"; null keys mean the implicit group.
  GroupMap all_rows;
  ASSERT_TRUE(
      RouteGroupedBatch(values, nullptr, nullptr, nullptr, &all_rows).ok());
  ASSERT_EQ(all_rows.size(), 1u);
  EXPECT_EQ(all_rows.begin()->second.n, values.size());
}

TEST(GroupMoments, MatchesDirectComputation) {
  GroupMoments m;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) m.Add(v);
  EXPECT_EQ(m.n, 5u);
  EXPECT_DOUBLE_EQ(m.mean, 3.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 2.5);
}

TEST(GroupMoments, MergeEqualsSequentialAdd) {
  GroupMoments left, right, all;
  for (double v : {1.0, 7.0, 2.0}) {
    left.Add(v);
    all.Add(v);
  }
  for (double v : {9.0, 4.0}) {
    right.Add(v);
    all.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.n, all.n);
  EXPECT_NEAR(left.mean, all.mean, 1e-12);
  EXPECT_NEAR(left.m2, all.m2, 1e-10);
}

TEST(GroupMoments, MergeIntoEmptyIsBitExactCopy) {
  GroupMoments src;
  for (double v : {0.1, 0.2, 0.7}) src.Add(v);
  GroupMoments dst;
  dst.Merge(src);
  EXPECT_EQ(dst.n, src.n);
  EXPECT_EQ(dst.mean, src.mean);
  EXPECT_EQ(dst.m2, src.m2);
}

storage::BlockPtr Mem(std::vector<double> values) {
  return std::make_shared<storage::MemoryBlock>(std::move(values));
}

TEST(GatherRowsAt, ResolvesAllColumnsAtTheSamePositions) {
  auto values = Mem({10, 11, 12, 13});
  auto keys = Mem({0, 1, 0, 1});
  const storage::Block* cols[] = {values.get(), nullptr, keys.get()};
  std::vector<uint64_t> indices = {3, 0, 3};
  std::vector<std::vector<double>> out;
  ASSERT_TRUE(storage::GatherRowsAt(cols, indices, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (std::vector<double>{13, 10, 13}));
  EXPECT_TRUE(out[1].empty());  // null column slot stays empty
  EXPECT_EQ(out[2], (std::vector<double>{1, 0, 1}));
}

TEST(GatherRowsAt, RejectsMisalignedBlocks) {
  auto a = Mem({1, 2, 3});
  auto b = Mem({1, 2});
  const storage::Block* cols[] = {a.get(), b.get()};
  std::vector<uint64_t> indices = {0};
  std::vector<std::vector<double>> out;
  EXPECT_TRUE(storage::GatherRowsAt(cols, indices, &out)
                  .IsFailedPrecondition());
}

/// Builds three row-aligned columns over `blocks` MemoryBlocks:
///   value[i] = base mean of its group + noise, key in {0..keys-1},
///   pred[i] = i-th value of a deterministic ramp used for filtering.
struct AlignedData {
  storage::Column values{"v"};
  storage::Column preds{"p"};
  storage::Column keys{"k"};
  std::map<double, std::pair<double, uint64_t>> exact;  // key -> (sum, count)
};

std::unique_ptr<AlignedData> MakeAligned(uint64_t rows, uint64_t blocks,
                                         uint64_t key_count, uint64_t seed) {
  auto data = std::make_unique<AlignedData>();
  Xoshiro256 rng(seed);
  uint64_t per_block = rows / blocks;
  for (uint64_t b = 0; b < blocks; ++b) {
    std::vector<double> vals, preds, keys;
    for (uint64_t i = 0; i < per_block; ++i) {
      double key = static_cast<double>(rng.NextBounded(key_count));
      // Group g is centred at 10·(g+1); noise keeps σ_g > 0.
      double value = 10.0 * (key + 1.0) + (rng.NextDouble() - 0.5);
      double pred = rng.NextDouble();
      vals.push_back(value);
      preds.push_back(pred);
      keys.push_back(key);
      if (pred >= 0.25) {
        auto& [sum, count] = data->exact[key];
        sum += value;
        ++count;
      }
    }
    EXPECT_TRUE(data->values.AppendBlock(Mem(std::move(vals))).ok());
    EXPECT_TRUE(data->preds.AppendBlock(Mem(std::move(preds))).ok());
    EXPECT_TRUE(data->keys.AppendBlock(Mem(std::move(keys))).ok());
  }
  return data;
}

GroupedSpec SpecOf(const AlignedData& data) {
  GroupedSpec spec;
  spec.values = &data.values;
  spec.predicate = &data.preds;
  spec.op = PredicateOp::kGe;
  spec.literal = 0.25;
  spec.keys = &data.keys;
  return spec;
}

TEST(ValidateGroupedSpec, RejectsMisalignedColumns) {
  auto data = MakeAligned(4000, 4, 3, 1);
  storage::Column short_keys{"k2"};
  ASSERT_TRUE(short_keys.AppendBlock(Mem({0, 1})).ok());
  GroupedSpec spec = SpecOf(*data);
  spec.keys = &short_keys;
  EXPECT_TRUE(ValidateGroupedSpec(spec).IsFailedPrecondition());
}

TEST(GroupByEngine, EstimatesEveryGroupWithinContract) {
  auto data = MakeAligned(120'000, 4, 4, 7);
  IslaOptions options;
  options.precision = 0.02;  // group σ ≈ 0.29 → m_g ≈ 800 matching samples
  GroupByEngine engine(options);
  auto r = engine.Aggregate(SpecOf(*data));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->groups.size(), 4u);
  EXPECT_EQ(r->data_size, 120'000u);
  for (const GroupResult& g : r->groups) {
    const auto& [sum, count] = data->exact.at(g.key);
    double exact_avg = sum / static_cast<double>(count);
    // 2× the contract half-widths gives comfortable non-flaky margins while
    // still binding the estimates to their reported CIs.
    EXPECT_NEAR(g.average, exact_avg, 2.0 * options.precision)
        << "key " << g.key;
    EXPECT_GT(g.count_ci_half_width, 0.0);
    EXPECT_NEAR(g.count_estimate, static_cast<double>(count),
                2.0 * g.count_ci_half_width)
        << "key " << g.key;
    EXPECT_GT(g.samples, 0u);
    EXPECT_GT(g.ci_half_width, 0.0);
    EXPECT_DOUBLE_EQ(g.sum, g.average * g.count_estimate);
  }
}

TEST(GroupByEngine, NoPredicateNoGroupIsOneExactCountGroup) {
  auto data = MakeAligned(50'000, 5, 3, 9);
  GroupedSpec spec;
  spec.values = &data->values;
  IslaOptions options;
  options.precision = 0.1;
  GroupByEngine engine(options);
  auto r = engine.Aggregate(spec);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->groups.size(), 1u);
  // Without a predicate every scanned row matches: the cardinality
  // "estimate" is exactly M.
  EXPECT_DOUBLE_EQ(r->groups[0].count_estimate, 50'000.0);
}

TEST(GroupByEngine, ImpossiblePredicateYieldsNoGroups) {
  auto data = MakeAligned(20'000, 4, 3, 11);
  GroupedSpec spec = SpecOf(*data);
  spec.literal = 2.0;  // preds are in [0, 1)
  GroupByEngine engine(IslaOptions{});
  auto r = engine.Aggregate(spec);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->groups.empty());
}

TEST(GroupByEngine, BitIdenticalAcrossParallelism) {
  auto data = MakeAligned(100'000, 8, 5, 13);
  IslaOptions base;
  base.precision = 0.1;
  std::vector<GroupedAggregateResult> results;
  for (uint32_t parallelism : {1u, 2u, 8u}) {
    IslaOptions options = base;
    options.parallelism = parallelism;
    GroupByEngine engine(options);
    auto r = engine.Aggregate(SpecOf(*data));
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*std::move(r));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].groups.size(), results[0].groups.size());
    EXPECT_EQ(results[i].scanned_samples, results[0].scanned_samples);
    for (size_t g = 0; g < results[0].groups.size(); ++g) {
      // Bit-identical, not just close.
      EXPECT_EQ(results[i].groups[g].key, results[0].groups[g].key);
      EXPECT_EQ(results[i].groups[g].average, results[0].groups[g].average);
      EXPECT_EQ(results[i].groups[g].sum, results[0].groups[g].sum);
      EXPECT_EQ(results[i].groups[g].count_estimate,
                results[0].groups[g].count_estimate);
      EXPECT_EQ(results[i].groups[g].ci_half_width,
                results[0].groups[g].ci_half_width);
      EXPECT_EQ(results[i].groups[g].samples, results[0].groups[g].samples);
    }
  }
}

TEST(GroupByEngine, SketchResultsBitIdenticalAcrossParallelism) {
  // The quantile surface rides the same fixed-block-decomposition
  // invariant as the moments: per-block sketches merge in block order no
  // matter which thread built them, so every derived field must be
  // bit-identical at any parallelism.
  auto data = MakeAligned(100'000, 8, 5, 13);
  std::vector<GroupedAggregateResult> results;
  for (uint32_t parallelism : {1u, 3u, 8u}) {
    IslaOptions options;
    options.precision = 0.1;
    options.parallelism = parallelism;
    GroupedSpec spec = SpecOf(*data);
    spec.want_sketch = true;
    spec.summary.quantile_q = 0.9;
    spec.summary.histogram_bins = 8;
    GroupByEngine engine(options);
    auto r = engine.Aggregate(spec);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*std::move(r));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].groups.size(), results[0].groups.size());
    for (size_t g = 0; g < results[0].groups.size(); ++g) {
      const GroupResult& a = results[0].groups[g];
      const GroupResult& b = results[i].groups[g];
      EXPECT_EQ(b.key, a.key);
      EXPECT_EQ(b.quantile_value, a.quantile_value);
      EXPECT_EQ(b.rank_error, a.rank_error);
      EXPECT_EQ(b.quantile_lo, a.quantile_lo);
      EXPECT_EQ(b.quantile_hi, a.quantile_hi);
      EXPECT_EQ(b.sketch_samples, a.sketch_samples);
      EXPECT_EQ(b.histogram, a.histogram);
      EXPECT_EQ(b.histogram_lo, a.histogram_lo);
      EXPECT_EQ(b.histogram_hi, a.histogram_hi);
    }
  }
  // And the sketch surface is actually populated: quantile near the
  // heaviest group centres, bands ordered, histogram mass positive.
  for (const GroupResult& g : results[0].groups) {
    EXPECT_GT(g.sketch_samples, 0u);
    EXPECT_GT(g.rank_error, 0.0);
    EXPECT_LE(g.quantile_lo, g.quantile_value);
    EXPECT_LE(g.quantile_value, g.quantile_hi);
    ASSERT_EQ(g.histogram.size(), 8u);
    double mass = 0.0;
    for (double b : g.histogram) mass += b;
    EXPECT_NEAR(mass, g.count_estimate, 1e-6 * (1.0 + g.count_estimate));
  }
}

TEST(ApplyTopK, KeepsLargestGroupsAndRecordsTotal) {
  GroupedAggregateResult r;
  for (int i = 0; i < 5; ++i) {
    GroupResult g;
    g.key = static_cast<double>(i);
    g.count_estimate = (i == 2) ? 90.0 : 10.0 * (i + 1);
    r.groups.push_back(g);
  }
  ApplyTopK(2, &r);
  EXPECT_EQ(r.total_groups, 5u);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].key, 2.0);  // count 90
  EXPECT_EQ(r.groups[1].key, 4.0);  // count 50
}

TEST(ApplyTopK, TieBreaksOnSmallerKey) {
  GroupedAggregateResult r;
  for (double key : {3.0, 1.0, 2.0}) {
    GroupResult g;
    g.key = key;
    g.count_estimate = 7.0;
    r.groups.push_back(g);
  }
  ApplyTopK(2, &r);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].key, 1.0);
  EXPECT_EQ(r.groups[1].key, 2.0);
  EXPECT_EQ(r.total_groups, 3u);
}

TEST(ApplyTopK, ZeroOrOversizedKIsANoOp) {
  GroupedAggregateResult r;
  GroupResult g;
  g.key = 1.0;
  g.count_estimate = 5.0;
  r.groups.push_back(g);
  ApplyTopK(0, &r);
  EXPECT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.total_groups, 1u);
  ApplyTopK(10, &r);
  EXPECT_EQ(r.groups.size(), 1u);
}

TEST(GroupByEngine, SeedSaltDecorrelatesRuns) {
  auto data = MakeAligned(50'000, 4, 3, 17);
  IslaOptions options;
  options.precision = 0.1;
  GroupByEngine engine(options);
  auto a = engine.Aggregate(SpecOf(*data), /*seed_salt=*/1);
  auto b = engine.Aggregate(SpecOf(*data), /*seed_salt=*/2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_FALSE(a->groups.empty());
  EXPECT_NE(a->groups[0].average, b->groups[0].average);
}

TEST(RunGroupedBlockPass, NanKeysAreDropped) {
  auto values = Mem({1, 2, 3, 4});
  auto keys = Mem({0, kNaN, 0, kNaN});
  Xoshiro256 rng(1);
  GroupedBlockPartial out;
  ASSERT_TRUE(RunGroupedBlockPass(*values, nullptr, PredicateOp::kGe, 0.0,
                                  keys.get(), 1000, &rng, &out)
                  .ok());
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_EQ(out.groups.begin()->first, 0.0);
  // Roughly half the draws land on NaN keys and are dropped.
  EXPECT_LT(out.all.n, 1000u);
  EXPECT_GT(out.all.n, 300u);
}

TEST(RunGroupedBlockPass, GroupExplosionIsRejected) {
  std::vector<double> keys(2 * kMaxGroups);
  std::vector<double> vals(2 * kMaxGroups);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<double>(i);
    vals[i] = 1.0;
  }
  auto value_block = Mem(std::move(vals));
  auto key_block = Mem(std::move(keys));
  Xoshiro256 rng(3);
  GroupedBlockPartial out;
  Status s =
      RunGroupedBlockPass(*value_block, nullptr, PredicateOp::kGe, 0.0,
                          key_block.get(), 8 * kMaxGroups, &rng, &out);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
}

TEST(PlanGroupedScan, SizesForTheWeakestGroup) {
  GroupedPilot pilot;
  pilot.pilot_samples = 1000;
  // Group 0: common and noisy. Group 1: rare and quiet.
  for (int i = 0; i < 900; ++i) {
    pilot.groups[0.0].Add(i % 2 == 0 ? 90.0 : 110.0);
  }
  for (int i = 0; i < 100; ++i) {
    pilot.groups[1.0].Add(50.0 + 0.01 * (i % 2));
  }
  pilot.all = pilot.groups[0.0];
  pilot.all.Merge(pilot.groups[1.0]);
  IslaOptions options;
  options.precision = 1.0;
  auto scan = PlanGroupedScan(pilot, options, 100'000'000);
  ASSERT_TRUE(scan.ok());
  // Group 0 needs u²σ²/e² ≈ 385 matching samples at selectivity 0.9 → ~428
  // scans; the plan must be at least that and far below M.
  EXPECT_GE(*scan, 400u);
  EXPECT_LT(*scan, 1'000'000u);
}

TEST(PlanGroupedScan, ZeroMatchPilotPlansFallbackScan) {
  // A pilot that matched nothing only bounds selectivity by ~1/pilot; the
  // plan must probe deeper (100x the pilot, clamped to M) instead of
  // silently reporting the predicate as empty.
  GroupedPilot pilot;
  pilot.pilot_samples = 500;  // scanned, but nothing matched
  auto scan = PlanGroupedScan(pilot, IslaOptions{}, 1'000'000);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, 50'000u);
  auto clamped = PlanGroupedScan(pilot, IslaOptions{}, 1000);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(*clamped, 1000u);  // never past M
}

TEST(PlanGroupedScan, UnscannedPilotPlansNothing) {
  GroupedPilot pilot;  // no pilot ran at all
  auto scan = PlanGroupedScan(pilot, IslaOptions{}, 1000);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, 0u);
}

TEST(GroupByEngine, RarePredicateSurvivesEmptyPilot) {
  // 20 matching rows in 200k (selectivity 1e-4): the 1000-row pilot will
  // usually match nothing, but the fallback scan must still find the group
  // with high probability instead of returning an empty result.
  std::vector<double> vals(200'000, 1.0), preds(200'000, 0.0);
  for (int i = 0; i < 20; ++i) preds[i * 10'000 + 17] = 1.0;
  storage::Column values{"v"}, predicates{"p"};
  ASSERT_TRUE(values.AppendBlock(Mem(std::move(vals))).ok());
  ASSERT_TRUE(predicates.AppendBlock(Mem(std::move(preds))).ok());
  GroupedSpec spec;
  spec.values = &values;
  spec.predicate = &predicates;
  spec.op = PredicateOp::kGe;
  spec.literal = 1.0;
  GroupByEngine engine(IslaOptions{});
  int found = 0;
  for (uint64_t salt = 0; salt < 10; ++salt) {
    auto r = engine.Aggregate(spec, salt);
    ASSERT_TRUE(r.ok()) << r.status();
    if (!r->groups.empty()) ++found;
  }
  // 100k-row fallback scans hit a 1e-4-selectivity predicate w.p. ~1-e^-10
  // each; all ten missing would mean the fallback never ran.
  EXPECT_GE(found, 5);
}

}  // namespace
}  // namespace core
}  // namespace isla
