// Hot-path contracts: steady-state allocation freedom, scratch-arena reuse
// without answer drift, and batch/stream equivalence with the historical
// value-at-a-time sampling order.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <span>
#include <vector>

#include "core/block_solver.h"
#include "core/boundaries.h"
#include "core/engine.h"
#include "core/group_by.h"
#include "engine/executor.h"
#include "engine/session.h"
#include "runtime/scratch_arena.h"
#include "sampling/samplers.h"
#include "storage/file_block.h"
#include "storage/table.h"
#include "util/rng.h"

// --- Allocation-counting hook -------------------------------------------
// Overriding the global allocator inside this test binary counts every
// heap allocation the process makes; tests snapshot the counter around the
// exact region they claim is allocation-free. Single-threaded tests only.
//
// GCC pairs the replaced operator new (malloc-backed) with the library's
// operator delete during inlining analysis and flags a false mismatch —
// both are replaced here, so the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

// Every allocating variant must be replaced together (throwing, nothrow,
// aligned): libstdc++ pairs e.g. stable_sort's nothrow new with the plain
// delete, and a half-replaced set trips ASan's alloc-dealloc matcher.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace isla {
namespace {

int64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::vector<double> MakeValues(size_t n, uint64_t seed) {
  std::vector<double> values(n);
  Xoshiro256 rng(seed);
  for (auto& v : values) v = 50.0 + 100.0 * rng.NextDouble();
  return values;
}

core::DataBoundaries MakeBoundaries(double sketch0, double sigma) {
  auto b = core::DataBoundaries::Create(sketch0, sigma, 0.5, 2.0);
  EXPECT_TRUE(b.ok()) << b.status();
  return *b;
}

TEST(HotPathAlloc, SteadyStateSamplingPhaseIsAllocationFree) {
  storage::MemoryBlock block(MakeValues(100000, 1));
  core::DataBoundaries boundaries = MakeBoundaries(100.0, 30.0);
  runtime::ScratchArena arena;

  // Warm-up sizes the arena's index/value buffers.
  core::BlockParams warm;
  Xoshiro256 warm_rng(7);
  ASSERT_TRUE(core::RunSamplingPhase(block, boundaries, 20000, 0.0, &warm_rng,
                                     &warm, &arena)
                  .ok());

  core::BlockParams out;
  Xoshiro256 rng(7);
  const int64_t before = AllocCount();
  ASSERT_TRUE(core::RunSamplingPhase(block, boundaries, 20000, 0.0, &rng,
                                     &out, &arena)
                  .ok());
  const int64_t after = AllocCount();
  EXPECT_EQ(after - before, 0)
      << "steady-state ungrouped sampling loop must not touch the heap";

  // And the warmed rerun is bit-identical to the warm-up pass.
  EXPECT_EQ(out.samples_drawn, warm.samples_drawn);
  EXPECT_EQ(out.param_s.count(), warm.param_s.count());
  EXPECT_EQ(out.param_s.sum(), warm.param_s.sum());
  EXPECT_EQ(out.param_l.sum(), warm.param_l.sum());
}

TEST(HotPathAlloc, MmapGatherIsAllocationFree) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("isla_hotalloc_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string path = (dir / "b.islb").string();
  std::vector<double> values = MakeValues(50000, 2);
  ASSERT_TRUE(storage::WriteBlockFile(path, values).ok());
  auto block = storage::FileBlock::Open(path);
  ASSERT_TRUE(block.ok());
  if (!(*block)->mmapped()) {
    fs::remove_all(dir);
    GTEST_SKIP() << "mmap unavailable on this platform";
  }

  std::vector<uint64_t> indices(sampling::kGatherBatch);
  Xoshiro256 rng(3);
  for (auto& i : indices) i = rng.NextBounded(values.size());
  std::vector<double> out(indices.size());

  const int64_t before = AllocCount();
  ASSERT_TRUE((*block)->GatherAt(indices, out.data()).ok());
  const int64_t after = AllocCount();
  EXPECT_EQ(after - before, 0) << "mmap gather must be zero-copy, zero-alloc";
  block->reset();
  fs::remove_all(dir);
}

TEST(ScratchReuse, RepeatedQueriesThroughOneExecutorDoNotDrift) {
  // One executor = one warm scratch pool. The first query runs on cold
  // arenas, later ones on reused (dirty) arenas; answers must not move by
  // a single bit, and must match a fresh executor's answer.
  engine::Session session;
  ASSERT_TRUE(session
                  .Execute("CREATE TABLE t FROM NORMAL(100, 20) ROWS 60000 "
                           "BLOCKS 4 SEED 11 GROUPS 5")
                  .ok());
  core::IslaOptions options;
  options.precision = 0.5;
  engine::QueryExecutor warm(session.catalog(), options);
  engine::QueryExecutor cold(session.catalog(), options);

  const char* queries[] = {
      "SELECT AVG(value) FROM t WITHIN 0.5 USING isla",
      "SELECT AVG(value) FROM t WHERE value >= 100 GROUP BY grp WITHIN 0.5 "
      "USING isla",
  };
  for (const char* q : queries) {
    auto first = warm.Execute(q);
    ASSERT_TRUE(first.ok()) << first.status();
    for (int rep = 0; rep < 3; ++rep) {
      auto again = warm.Execute(q);
      ASSERT_TRUE(again.ok()) << again.status();
      EXPECT_EQ(again->value, first->value) << q;
      ASSERT_EQ(again->grouped.has_value(), first->grouped.has_value());
      if (again->grouped.has_value()) {
        ASSERT_EQ(again->grouped->groups.size(),
                  first->grouped->groups.size());
        for (size_t g = 0; g < again->grouped->groups.size(); ++g) {
          EXPECT_EQ(again->grouped->groups[g].average,
                    first->grouped->groups[g].average);
          EXPECT_EQ(again->grouped->groups[g].count_estimate,
                    first->grouped->groups[g].count_estimate);
        }
      }
    }
    auto fresh = cold.Execute(q);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh->value, first->value)
        << "warm-pool answer differs from cold-pool answer: " << q;
  }
}

TEST(BlockSampleStream, ConcatenatedBatchesMatchVisitOrder) {
  storage::MemoryBlock block(MakeValues(5000, 4));

  std::vector<double> visited;
  Xoshiro256 rng_a(99);
  ASSERT_TRUE(sampling::SampleBlockValues(
                  block, 10000, [&](double v) { visited.push_back(v); },
                  &rng_a)
                  .ok());

  runtime::ScratchArena arena;
  Xoshiro256 rng_b(99);
  sampling::BlockSampleStream stream_b(block, 10000, &rng_b, &arena);
  std::vector<double> streamed;
  std::span<const double> batch;
  for (;;) {
    ASSERT_TRUE(stream_b.Next(&batch).ok());
    if (batch.empty()) break;
    streamed.insert(streamed.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(streamed, visited);

  // DrawBlockSampleInto produces the same sequence again.
  Xoshiro256 rng_c(99);
  std::vector<double> drawn;
  ASSERT_TRUE(
      sampling::DrawBlockSampleInto(block, 10000, &rng_c, &arena, &drawn)
          .ok());
  EXPECT_EQ(drawn, visited);
}

TEST(BlockSampleStream, EmptyBlockAndNullRngFail) {
  storage::MemoryBlock empty{std::vector<double>{}};
  runtime::ScratchArena arena;
  sampling::BlockSampleStream s1(empty, 0, nullptr, &arena);
  std::span<const double> batch;
  EXPECT_TRUE(s1.Next(&batch).IsInvalidArgument());
  Xoshiro256 rng(1);
  sampling::BlockSampleStream s2(empty, 0, &rng, &arena);
  EXPECT_TRUE(s2.Next(&batch).IsFailedPrecondition());
  EXPECT_TRUE(s2.Next(nullptr).IsInvalidArgument());
}

TEST(ScratchPool, LeasesRecycleArenas) {
  runtime::ScratchPool pool;
  runtime::ScratchArena* first = nullptr;
  {
    auto lease = pool.Acquire();
    first = lease.get();
    ASSERT_NE(first, nullptr);
    lease->indices.resize(1024);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
  {
    auto lease = pool.Acquire();
    EXPECT_EQ(lease.get(), first) << "returned arena should be reused";
    EXPECT_EQ(lease->indices.size(), 1024u) << "buffers keep their warmth";
    EXPECT_EQ(pool.IdleCount(), 0u);
  }
  EXPECT_EQ(pool.IdleCount(), 1u);
}

}  // namespace
}  // namespace isla
