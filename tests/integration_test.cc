// Cross-module integration tests: file-backed storage under the full
// engine, catalog + SQL round trips, and the distributed-summarization
// equivalence the paper's architecture relies on.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/engine.h"
#include "core/summarizer.h"
#include "engine/executor.h"
#include "stats/distribution.h"
#include "storage/file_block.h"
#include "storage/table.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace isla {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("isla_it_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IntegrationTest, EngineOverFileBackedBlocks) {
  // Materialize N(100, 20²) into 4 on-disk blocks, then aggregate through
  // the real file I/O path.
  stats::NormalDistribution dist(100.0, 20.0);
  auto table = std::make_shared<storage::Table>("disk");
  ASSERT_TRUE(table->AddColumn("v").ok());
  double truth_sum = 0.0;
  uint64_t truth_n = 0;
  for (int j = 0; j < 4; ++j) {
    std::vector<double> values;
    for (int i = 0; i < 50'000; ++i) {
      double v = dist.Sample(100 + j, i);
      values.push_back(v);
      truth_sum += v;
      ++truth_n;
    }
    std::string path = (dir_ / ("b" + std::to_string(j) + ".islb")).string();
    ASSERT_TRUE(storage::WriteBlockFile(path, values).ok());
    auto block = storage::FileBlock::Open(path);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(table->AppendBlock("v", *block).ok());
  }
  double truth = truth_sum / static_cast<double>(truth_n);

  core::IslaOptions options;
  options.precision = 0.5;
  core::IslaEngine engine(options);
  auto col = table->GetColumn("v");
  ASSERT_TRUE(col.ok());
  auto r = engine.AggregateAvg(**col);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->average, truth, 0.5);
}

TEST_F(IntegrationTest, SqlOverFileBackedCatalog) {
  std::vector<double> values;
  stats::NormalDistribution dist(50.0, 5.0);
  for (int i = 0; i < 100'000; ++i) values.push_back(dist.Sample(7, i));
  std::string path = (dir_ / "col.islb").string();
  ASSERT_TRUE(storage::WriteBlockFile(path, values).ok());
  auto block = storage::FileBlock::Open(path);
  ASSERT_TRUE(block.ok());

  auto table = std::make_shared<storage::Table>("metrics");
  ASSERT_TRUE(table->AddColumn("latency").ok());
  ASSERT_TRUE(table->AppendBlock("latency", *block).ok());
  storage::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(table).ok());

  engine::QueryExecutor ex(&catalog, core::IslaOptions{});
  auto exact = ex.Execute("SELECT AVG(latency) FROM metrics USING exact");
  auto approx = ex.Execute("SELECT AVG(latency) FROM metrics WITHIN 0.2");
  ASSERT_TRUE(exact.ok() && approx.ok());
  EXPECT_NEAR(approx->value, exact->value, 0.2);
}

TEST_F(IntegrationTest, DistributedSummarizationMatchesMonolith) {
  // Simulating §VII-E: per-block partial answers combined by the
  // coordinator must equal the engine's own block-weighted answer.
  auto ds = workload::MakeNormalDataset(10'000'000, 8, 100.0, 20.0, 21);
  ASSERT_TRUE(ds.ok());
  core::IslaOptions options;
  options.precision = 0.3;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(r.ok());

  std::vector<double> partials;
  std::vector<uint64_t> sizes;
  for (const auto& b : r->blocks) {
    partials.push_back(b.answer.avg);
    sizes.push_back(b.block_rows);
  }
  auto combined = core::SummarizePartials(partials, sizes);
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR(combined.value() - r->shift, r->average, 1e-9);
}

TEST_F(IntegrationTest, MixedBlockKindsInOneColumn) {
  // A column backed by memory + generator + file blocks simultaneously.
  auto table = std::make_shared<storage::Table>("mixed");
  ASSERT_TRUE(table->AddColumn("v").ok());

  stats::NormalDistribution dist(100.0, 10.0);
  std::vector<double> mem_values;
  for (int i = 0; i < 30'000; ++i) mem_values.push_back(dist.Sample(1, i));
  ASSERT_TRUE(table
                  ->AppendBlock("v", std::make_shared<storage::MemoryBlock>(
                                         mem_values))
                  .ok());

  ASSERT_TRUE(table
                  ->AppendBlock(
                      "v", std::make_shared<storage::GeneratorBlock>(
                               std::make_shared<stats::NormalDistribution>(
                                   100.0, 10.0),
                               40'000, 2))
                  .ok());

  std::vector<double> file_values;
  for (int i = 0; i < 30'000; ++i) file_values.push_back(dist.Sample(3, i));
  std::string path = (dir_ / "mix.islb").string();
  ASSERT_TRUE(storage::WriteBlockFile(path, file_values).ok());
  auto fb = storage::FileBlock::Open(path);
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(table->AppendBlock("v", *fb).ok());

  auto col = table->GetColumn("v");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->num_rows(), 100'000u);

  core::IslaOptions options;
  options.precision = 0.5;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(**col);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->average, 100.0, 1.0);  // 2e band.
}

TEST_F(IntegrationTest, OneTerabyteVirtualRun) {
  // The paper's headline scaling claim (§VIII-A): 10¹² rows, answered by
  // touching only ~150k of them. Virtual blocks make this a sub-second
  // test.
  auto ds = workload::MakeNormalDataset(1'000'000'000'000ull, 10, 100.0,
                                        20.0, 22);
  ASSERT_TRUE(ds.ok());
  core::IslaOptions options;
  options.precision = 0.1;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->average, 100.0, 0.3);
  EXPECT_LT(r->total_samples, 400'000u);
  EXPECT_EQ(r->data_size, 1'000'000'000'000ull);
}

}  // namespace
}  // namespace isla
