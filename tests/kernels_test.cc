// Kernel dispatch contracts: every SIMD tier must be bit-identical to the
// scalar reference for every kernel — across unaligned bases, tail lengths
// 0..2·stripe width, NaN/±inf/−0.0 payloads, all-true/all-false masks, and
// the Lemire-rejection replay path of index generation — and the kernels
// must never touch the heap (operator-new counting hook). CI runs this
// suite (with the rest of ctest) under ISLA_KERNELS=scalar as well, which
// the Dispatch.HonorsIslaKernelsEnv test turns into a hard assertion.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "runtime/kernels/kernels.h"
#include "util/rng.h"

// --- Allocation-counting hook (same pattern as hotpath_test.cc) ---------
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace isla {
namespace {

namespace kernels = runtime::kernels;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// The SIMD tiers under test (everything supported beyond scalar).
std::vector<kernels::DispatchLevel> SimdLevels() {
  auto levels = kernels::SupportedLevels();
  levels.erase(levels.begin());
  return levels;
}

std::string LevelTag(kernels::DispatchLevel level) {
  return std::string(kernels::DispatchLevelName(level));
}

/// Data with every special value the predicate/accumulate kernels must
/// handle, at positions that land in both vector bodies and scalar tails.
/// The +1 element at the front lets tests run off an unaligned base.
std::vector<double> SpecialData(size_t n, uint64_t seed) {
  std::vector<double> v(n + 1);
  Xoshiro256 rng(seed);
  for (auto& x : v) x = 200.0 * rng.NextDouble() - 100.0;
  const double specials[] = {kNan, kInf, -kInf, -0.0, 0.0, 42.0, -42.0};
  for (size_t i = 0; i < v.size(); ++i) {
    if (rng.NextBounded(4) == 0) v[i] = specials[rng.NextBounded(7)];
  }
  return v;
}

std::vector<uint8_t> RandomMask(size_t n, uint64_t seed) {
  std::vector<uint8_t> mask(n + 1);
  Xoshiro256 rng(seed);
  for (auto& m : mask) m = static_cast<uint8_t>(rng.NextBounded(2));
  return mask;
}

/// Bitwise double equality (EXPECT_EQ would call -0.0 == 0.0 and NaN != NaN).
bool BitEqual(double a, double b) {
  uint64_t ba;
  uint64_t bb;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

/// Sum-kernel equality: bit-identical, except that once a sum is NaN the
/// particular NaN is unspecified (see the sum contract in kernels.h).
bool SumEqual(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return BitEqual(a, b);
}

#define EXPECT_BITEQ(a, b) \
  EXPECT_PRED2(BitEqual, (a), (b))

// Tail lengths 0..2·stripe width (16) plus batch-scale sizes so every
// vector-body/tail split gets exercised.
const size_t kSizes[] = {0, 1,  2,  3,  4,  5,  6,  7,  8,  9,   10,  11,
                         12, 13, 14, 15, 16, 17, 31, 33, 100, 4096, 4099};

TEST(Dispatch, NamesRoundTrip) {
  for (auto level :
       {kernels::DispatchLevel::kScalar, kernels::DispatchLevel::kSse2,
        kernels::DispatchLevel::kAvx2}) {
    kernels::DispatchLevel parsed;
    ASSERT_TRUE(kernels::DispatchLevelFromString(
        kernels::DispatchLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  kernels::DispatchLevel parsed;
  EXPECT_FALSE(kernels::DispatchLevelFromString("avx512", &parsed));
  EXPECT_FALSE(kernels::DispatchLevelFromString("", &parsed));
}

TEST(Dispatch, ActiveLevelIsExecutable) {
  EXPECT_TRUE(kernels::LevelSupported(kernels::ActiveLevel()));
  EXPECT_LE(static_cast<int>(kernels::ActiveLevel()),
            static_cast<int>(kernels::DetectBestLevel()));
}

TEST(Dispatch, HonorsIslaKernelsEnv) {
  // When the suite runs under a forced tier (the CI scalar-fallback job),
  // assert the dispatch actually obeyed; otherwise just require the
  // default to be the best detected tier.
  const char* env = std::getenv("ISLA_KERNELS");
  kernels::DispatchLevel forced;
  if (env != nullptr && kernels::DispatchLevelFromString(env, &forced) &&
      kernels::LevelSupported(forced)) {
    EXPECT_EQ(kernels::ActiveLevel(), forced)
        << "ISLA_KERNELS=" << env << " was not honored";
  } else if (env == nullptr) {
    EXPECT_EQ(kernels::ActiveLevel(), kernels::DetectBestLevel());
  }
}

TEST(Dispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernels::LevelCompiled(kernels::DispatchLevel::kScalar));
  EXPECT_TRUE(kernels::LevelSupported(kernels::DispatchLevel::kScalar));
}

TEST(PredicateMaskEquivalence, AllOpsAllTiersAllTails) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  const double literals[] = {10.0, -0.0, 0.0, kInf, -kInf, kNan};
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      const std::vector<double> data = SpecialData(n, 7 + n);
      for (int align = 0; align < 2; ++align) {
        const double* base = data.data() + align;
        for (int op = 0; op < 6; ++op) {
          for (double lit : literals) {
            std::vector<uint8_t> want(n + 1, 0xcc);
            std::vector<uint8_t> got(n + 1, 0xcc);
            scalar.eval_predicate_mask(static_cast<kernels::CmpOp>(op), base,
                                       n, lit, want.data());
            simd.eval_predicate_mask(static_cast<kernels::CmpOp>(op), base,
                                     n, lit, got.data());
            ASSERT_EQ(std::memcmp(want.data(), got.data(), n), 0)
                << LevelTag(level) << " op=" << op << " n=" << n
                << " lit=" << lit << " align=" << align;
          }
        }
      }
    }
  }
}

TEST(MaskKernelsEquivalence, PopcountAndCompact) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      const std::vector<double> data = SpecialData(n, 11 + n);
      std::vector<std::vector<uint8_t>> masks = {RandomMask(n, 3 + n)};
      masks.emplace_back(n + 1, uint8_t{1});  // all-true
      masks.emplace_back(n + 1, uint8_t{0});  // all-false
      for (const auto& mask : masks) {
        for (int align = 0; align < 2; ++align) {
          const double* base = data.data() + align;
          const uint8_t* mbase = mask.data() + align;
          ASSERT_EQ(scalar.mask_popcount(mbase, n),
                    simd.mask_popcount(mbase, n))
              << LevelTag(level) << " n=" << n;

          std::vector<double> want(n + 8, 0.0);
          std::vector<double> got(n + 8, 0.0);
          const size_t wm = scalar.compact_masked(base, mbase, n,
                                                  want.data());
          const size_t gm = simd.compact_masked(base, mbase, n, got.data());
          ASSERT_EQ(wm, gm) << LevelTag(level) << " n=" << n;
          for (size_t i = 0; i < wm; ++i) {
            ASSERT_PRED2(BitEqual, want[i], got[i])
                << LevelTag(level) << " n=" << n << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(MaskKernelsEquivalence, CompactGroupedAllNullCombinations) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      const std::vector<double> values = SpecialData(n, 17 + n);
      const std::vector<double> keys = SpecialData(n, 23 + n);  // has NaNs
      const std::vector<uint8_t> mask = RandomMask(n, 29 + n);
      struct Case {
        const double* k;
        const uint8_t* m;
      };
      const Case cases[] = {
          {nullptr, nullptr},
          {keys.data(), nullptr},
          {nullptr, mask.data()},
          {keys.data(), mask.data()},
      };
      for (const Case& c : cases) {
        std::vector<double> want_v(n + 8), got_v(n + 8);
        std::vector<double> want_k(n + 8), got_k(n + 8);
        const size_t wm = scalar.compact_grouped(
            values.data(), c.k, c.m, n, want_v.data(), want_k.data());
        const size_t gm = simd.compact_grouped(values.data(), c.k, c.m, n,
                                               got_v.data(), got_k.data());
        ASSERT_EQ(wm, gm) << LevelTag(level) << " n=" << n;
        for (size_t i = 0; i < wm; ++i) {
          ASSERT_PRED2(BitEqual, want_v[i], got_v[i]) << LevelTag(level);
          if (c.k != nullptr) {
            ASSERT_PRED2(BitEqual, want_k[i], got_k[i]) << LevelTag(level);
          }
        }
      }
    }
  }
}

TEST(CompactStride2Equivalence, AllTiersOffsetsAndInPlace) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      const std::vector<double> data = SpecialData(n, 73 + n);
      for (int align = 0; align < 2; ++align) {
        const double* base = data.data() + align;
        for (size_t offset : {size_t{0}, size_t{1}}) {
          std::vector<double> want(n + 8, kNan), got(n + 8, kNan);
          const size_t wm = scalar.compact_stride2(base, n, offset,
                                                   want.data());
          const size_t gm = simd.compact_stride2(base, n, offset,
                                                 got.data());
          ASSERT_EQ(wm, gm)
              << LevelTag(level) << " n=" << n << " offset=" << offset;
          ASSERT_EQ(wm, n > offset ? (n - offset + 1) / 2 : 0);
          for (size_t i = 0; i < wm; ++i) {
            ASSERT_PRED2(BitEqual, want[i], got[i])
                << LevelTag(level) << " n=" << n << " offset=" << offset
                << " i=" << i;
            // The contract: survivor i is v[offset + 2i].
            ASSERT_PRED2(BitEqual, want[i], base[offset + 2 * i]);
          }
          // In-place (out == v): writes must trail reads on every tier.
          std::vector<double> in_place(data.begin() + align, data.end());
          const size_t im = simd.compact_stride2(in_place.data(), n, offset,
                                                 in_place.data());
          ASSERT_EQ(im, wm) << LevelTag(level) << " n=" << n;
          for (size_t i = 0; i < im; ++i) {
            ASSERT_PRED2(BitEqual, in_place[i], want[i])
                << LevelTag(level) << " n=" << n << " offset=" << offset
                << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(ClassifyRegionsEquivalence, AllTiersWithSpecials) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      const std::vector<double> data = SpecialData(n, 31 + n);
      // Disjoint windows (every real DataBoundaries) plus an overlapping
      // pair (lo_inner > hi_inner) that pins the S-takes-precedence rule.
      struct Windows {
        double lo2, lo1, hi1, hi2;
      };
      const Windows windows[] = {{-50.0, -10.0, 10.0, 50.0},
                                 {-50.0, 30.0, -30.0, 50.0}};
      for (const Windows& w : windows) {
        for (double shift : {0.0, 117.5}) {
          std::vector<double> ws(n + 8), wl(n + 8), gs(n + 8), gl(n + 8);
          size_t wsn = 0, wln = 0, gsn = 0, gln = 0;
          scalar.classify_regions(data.data(), n, shift, w.lo2, w.lo1,
                                  w.hi1, w.hi2, ws.data(), &wsn, wl.data(),
                                  &wln);
          simd.classify_regions(data.data(), n, shift, w.lo2, w.lo1, w.hi1,
                                w.hi2, gs.data(), &gsn, gl.data(), &gln);
          ASSERT_EQ(wsn, gsn) << LevelTag(level) << " n=" << n;
          ASSERT_EQ(wln, gln) << LevelTag(level) << " n=" << n;
          for (size_t i = 0; i < wsn; ++i) {
            ASSERT_PRED2(BitEqual, ws[i], gs[i]) << LevelTag(level);
          }
          for (size_t i = 0; i < wln; ++i) {
            ASSERT_PRED2(BitEqual, wl[i], gl[i]) << LevelTag(level);
          }
        }
      }
    }
  }
}

TEST(AccumulateEquivalence, SumMinMaxMaskedAndNot) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      // Two payloads: finite-but-wild magnitudes (the compensation must
      // agree exactly) and one laced with NaN/±inf/−0.0.
      std::vector<double> finite_mut(n + 1);
      Xoshiro256 rng(41 + n);
      for (auto& x : finite_mut) {
        x = std::ldexp(2.0 * rng.NextDouble() - 1.0,
                       static_cast<int>(rng.NextBounded(60)) - 30);
      }
      const std::vector<double> finite = std::move(finite_mut);
      const std::vector<double> wild = SpecialData(n, 43 + n);
      const std::vector<uint8_t> mask = RandomMask(n, 47 + n);
      const std::vector<uint8_t> all1(n + 1, uint8_t{1});
      const std::vector<uint8_t> all0(n + 1, uint8_t{0});
      for (const auto* data : {&finite, &wild}) {
        for (int align = 0; align < 2; ++align) {
          const double* base = data->data() + align;
          EXPECT_PRED2(SumEqual, scalar.sum(base, n), simd.sum(base, n))
              << LevelTag(level) << " n=" << n;
          EXPECT_BITEQ(scalar.min(base, n), simd.min(base, n))
              << LevelTag(level) << " n=" << n;
          EXPECT_BITEQ(scalar.max(base, n), simd.max(base, n))
              << LevelTag(level) << " n=" << n;
          for (const auto* m : {&mask, &all1, &all0}) {
            const uint8_t* mbase = m->data() + align;
            EXPECT_PRED2(SumEqual, scalar.masked_sum(base, mbase, n),
                         simd.masked_sum(base, mbase, n))
                << LevelTag(level) << " n=" << n;
            EXPECT_BITEQ(scalar.masked_min(base, mbase, n),
                         simd.masked_min(base, mbase, n))
                << LevelTag(level) << " n=" << n;
            EXPECT_BITEQ(scalar.masked_max(base, mbase, n),
                         simd.masked_max(base, mbase, n))
                << LevelTag(level) << " n=" << n;
          }
        }
      }
    }
  }
}

TEST(AccumulateSemantics, EmptyAndNanOnly) {
  for (auto level : kernels::SupportedLevels()) {
    const auto& ops = kernels::OpsFor(level);
    EXPECT_EQ(ops.sum(nullptr, 0), 0.0) << LevelTag(level);
    EXPECT_EQ(ops.min(nullptr, 0), kInf) << LevelTag(level);
    EXPECT_EQ(ops.max(nullptr, 0), -kInf) << LevelTag(level);
    const std::vector<double> nans(20, kNan);
    EXPECT_EQ(ops.min(nans.data(), nans.size()), kInf) << LevelTag(level);
    EXPECT_EQ(ops.max(nans.data(), nans.size()), -kInf) << LevelTag(level);
    EXPECT_TRUE(std::isnan(ops.sum(nans.data(), nans.size())))
        << LevelTag(level);
  }
}

TEST(GatherEquivalence, GatherAndRangeCheck) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  const std::vector<double> base = SpecialData(5000, 53);
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (size_t n : kSizes) {
      std::vector<uint64_t> idx(n + 1);
      Xoshiro256 rng(59 + n);
      for (auto& i : idx) i = rng.NextBounded(base.size());
      std::vector<double> want(n + 1), got(n + 1);
      scalar.gather_f64(base.data(), idx.data(), n, want.data());
      simd.gather_f64(base.data(), idx.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_PRED2(BitEqual, want[i], got[i])
            << LevelTag(level) << " n=" << n;
      }
      EXPECT_TRUE(simd.indices_in_range(idx.data(), n, base.size()));
      EXPECT_EQ(scalar.indices_in_range(idx.data(), n, 100),
                simd.indices_in_range(idx.data(), n, 100))
          << LevelTag(level) << " n=" << n;
      if (n > 0) {
        idx[n - 1] = base.size();  // one past the end, in the tail
        EXPECT_FALSE(simd.indices_in_range(idx.data(), n, base.size()));
        idx[0] = ~uint64_t{0};  // huge index, in the vector body
        EXPECT_FALSE(simd.indices_in_range(idx.data(), n, base.size()));
      }
    }
    EXPECT_TRUE(simd.indices_in_range(nullptr, 0, 0)) << LevelTag(level);
  }
}

TEST(IndexGenerationEquivalence, SequenceAndRngStateMatchScalar) {
  const auto& scalar = kernels::OpsFor(kernels::DispatchLevel::kScalar);
  // (1<<63)+1 has Lemire acceptance threshold 2^63-1: roughly half of all
  // draws replay, forcing the SIMD tiers through the scalar-replay path.
  const uint64_t bounds[] = {1,
                             2,
                             3,
                             5,
                             1000,
                             4096,
                             1234567891,
                             (uint64_t{1} << 62) + 12345,
                             (uint64_t{1} << 63) + 1};
  for (auto level : SimdLevels()) {
    const auto& simd = kernels::OpsFor(level);
    for (uint64_t n : bounds) {
      for (uint64_t count : {0, 1, 3, 7, 8, 9, 64, 4096}) {
        Xoshiro256 rng_a(77);
        Xoshiro256 rng_b(77);
        std::vector<uint64_t> want(count + 1, ~uint64_t{0});
        std::vector<uint64_t> got(count + 1, ~uint64_t{0});
        scalar.generate_uniform_indices(n, count, &rng_a, want.data());
        simd.generate_uniform_indices(n, count, &rng_b, got.data());
        ASSERT_EQ(std::memcmp(want.data(), got.data(),
                              count * sizeof(uint64_t)),
                  0)
            << LevelTag(level) << " n=" << n << " count=" << count;
        // Identical RNG consumption: the streams must stay in lockstep.
        EXPECT_EQ(rng_a.Next(), rng_b.Next())
            << LevelTag(level) << " n=" << n << " count=" << count;
      }
    }
  }
}

TEST(IndexGenerationEquivalence, MatchesHistoricNextBoundedLoop) {
  // The scalar kernel *is* the historical definition of the index stream;
  // pin it against a literal NextBounded loop so no tier can drift.
  const auto& ops = kernels::Ops();
  Xoshiro256 rng_a(123);
  Xoshiro256 rng_b(123);
  std::vector<uint64_t> got(1000);
  ops.generate_uniform_indices(999983, got.size(), &rng_a, got.data());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], rng_b.NextBounded(999983)) << "i=" << i;
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(KernelAlloc, SteadyStateKernelsAreAllocationFree) {
  const auto& ops = kernels::Ops();
  const size_t n = 4096;
  std::vector<double> data = SpecialData(n, 61);
  std::vector<uint8_t> mask = RandomMask(n, 67);
  std::vector<double> out_v(n + 8), out_k(n + 8), out_s(n + 8),
      out_l(n + 8);
  std::vector<uint64_t> idx(n);
  std::vector<uint64_t> small_idx(n);
  std::vector<double> gathered(n);
  Xoshiro256 rng(71);

  const int64_t before = g_alloc_count.load(std::memory_order_relaxed);
  ops.generate_uniform_indices(123457, n, &rng, idx.data());
  ops.eval_predicate_mask(kernels::CmpOp::kGe, data.data(), n, 0.0,
                          mask.data());
  (void)ops.mask_popcount(mask.data(), n);
  (void)ops.compact_masked(data.data(), mask.data(), n, out_v.data());
  (void)ops.compact_grouped(data.data(), data.data(), mask.data(), n,
                            out_v.data(), out_k.data());
  size_t ns = 0, nl = 0;
  ops.classify_regions(data.data(), n, 1.0, -50.0, -10.0, 10.0, 50.0,
                       out_s.data(), &ns, out_l.data(), &nl);
  (void)ops.indices_in_range(idx.data(), n, 123457);
  for (size_t i = 0; i < n; ++i) small_idx[i] = idx[i] % data.size();
  ops.gather_f64(data.data(), small_idx.data(), n, gathered.data());
  (void)ops.sum(data.data(), n);
  (void)ops.masked_sum(data.data(), mask.data(), n);
  (void)ops.min(data.data(), n);
  (void)ops.max(data.data(), n);
  (void)ops.masked_min(data.data(), mask.data(), n);
  (void)ops.masked_max(data.data(), mask.data(), n);
  (void)ops.compact_stride2(data.data(), n, 0, out_v.data());
  (void)ops.compact_stride2(data.data(), n, 1, out_v.data());
  const int64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "kernels must never touch the heap";
}

}  // namespace
}  // namespace isla
