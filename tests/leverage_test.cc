// Unit tests for core/leverage.h. The paper's Example 1 / Table II provides
// exact rational oracles for every stage of the leverage pipeline.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/leverage.h"

namespace isla {
namespace core {
namespace {

// Example 1 of §IV-B: S samples {4, 5}, L samples {8}, q = 1.
// T2 = 16 + 25 + 64 = 105.
const std::vector<double> kXs = {4.0, 5.0};
const std::vector<double> kYs = {8.0};

TEST(ComputeLeverages, PaperTableIIRawScores) {
  auto lb = ComputeLeverages(kXs, kYs, /*q=*/1.0);
  ASSERT_TRUE(lb.ok());
  EXPECT_NEAR(lb->raw_s[0], 89.0 / 105.0, 1e-12);   // 1 - 16/105
  EXPECT_NEAR(lb->raw_s[1], 16.0 / 21.0, 1e-12);    // 1 - 25/105 = 80/105
  EXPECT_NEAR(lb->raw_l[0], 64.0 / 105.0, 1e-12);
}

TEST(ComputeLeverages, PaperTableIINormalizationFactors) {
  auto lb = ComputeLeverages(kXs, kYs, 1.0);
  ASSERT_TRUE(lb.ok());
  EXPECT_NEAR(lb->fac_s, 169.0 / 70.0, 1e-12);
  EXPECT_NEAR(lb->fac_l, 64.0 / 35.0, 1e-12);
}

TEST(ComputeLeverages, PaperTableIINormalizedLeverages) {
  auto lb = ComputeLeverages(kXs, kYs, 1.0);
  ASSERT_TRUE(lb.ok());
  EXPECT_NEAR(lb->lev_s[0], 178.0 / 507.0, 1e-12);
  EXPECT_NEAR(lb->lev_s[1], 160.0 / 507.0, 1e-12);
  EXPECT_NEAR(lb->lev_l[0], 1.0 / 3.0, 1e-12);
}

TEST(ComputeLeverages, LeveragesSumToOne) {
  // Theorem 2: Σ lev = 1.
  auto lb = ComputeLeverages(kXs, kYs, 1.0);
  ASSERT_TRUE(lb.ok());
  double total = 0.0;
  for (double l : lb->lev_s) total += l;
  for (double l : lb->lev_l) total += l;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ComputeLeverages, Constraint2RegionSplit) {
  // levSum_S : levSum_L = q·u : v.
  for (double q : {0.2, 1.0, 5.0, 10.0}) {
    auto lb = ComputeLeverages(kXs, kYs, q);
    ASSERT_TRUE(lb.ok());
    double sum_s = lb->lev_s[0] + lb->lev_s[1];
    double sum_l = lb->lev_l[0];
    EXPECT_NEAR(sum_s / sum_l, q * 2.0 / 1.0, 1e-10) << "q=" << q;
    EXPECT_NEAR(sum_s + sum_l, 1.0, 1e-12);
  }
}

TEST(ComputeLeverages, FartherFromAxisGetsLargerLeverage) {
  // §IV-A2: within S, smaller values (farther from the middle axis) get
  // larger leverage; within L, larger values do.
  std::vector<double> xs = {70.0, 75.0, 80.0, 85.0};
  std::vector<double> ys = {115.0, 120.0, 125.0, 130.0};
  auto lb = ComputeLeverages(xs, ys, 1.0);
  ASSERT_TRUE(lb.ok());
  for (size_t i = 1; i < lb->lev_s.size(); ++i) {
    EXPECT_GT(lb->lev_s[i - 1], lb->lev_s[i]);  // Decreasing in value.
  }
  for (size_t i = 1; i < lb->lev_l.size(); ++i) {
    EXPECT_LT(lb->lev_l[i - 1], lb->lev_l[i]);  // Increasing in value.
  }
}

TEST(ComputeLeverages, RejectsEmptyRegions) {
  EXPECT_TRUE(ComputeLeverages({}, kYs, 1.0).status().IsFailedPrecondition());
  EXPECT_TRUE(ComputeLeverages(kXs, {}, 1.0).status().IsFailedPrecondition());
}

TEST(ComputeLeverages, RejectsBadQ) {
  EXPECT_TRUE(ComputeLeverages(kXs, kYs, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(ComputeLeverages(kXs, kYs, -1.0).status().IsInvalidArgument());
}

TEST(ComputeLeverages, RejectsAllZeroSamples) {
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_TRUE(ComputeLeverages(zeros, std::vector<double>{0.0}, 1.0)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ComputeProbabilities, SumToOneForAnyAlpha) {
  for (double alpha : {-0.5, 0.0, 0.1, 0.5, 0.99}) {
    auto probs = ComputeProbabilities(kXs, kYs, 1.0, alpha);
    ASSERT_TRUE(probs.ok()) << "alpha=" << alpha;
    double total = std::accumulate(probs->begin(), probs->end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-12) << "alpha=" << alpha;
  }
}

TEST(ComputeProbabilities, AlphaZeroIsUniform) {
  auto probs = ComputeProbabilities(kXs, kYs, 1.0, 0.0);
  ASSERT_TRUE(probs.ok());
  for (double p : *probs) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(ComputeProbabilities, PaperTableIIProbForm) {
  // Table II: prob(4) = (178/507)α + (1−α)/3.
  double alpha = 0.1;
  auto probs = ComputeProbabilities(kXs, kYs, 1.0, alpha);
  ASSERT_TRUE(probs.ok());
  EXPECT_NEAR((*probs)[0], 178.0 / 507.0 * alpha + (1 - alpha) / 3.0, 1e-12);
  EXPECT_NEAR((*probs)[2], 1.0 / 3.0 * alpha + (1 - alpha) / 3.0, 1e-12);
}

TEST(ComputeProbabilities, RejectsAlphaOutsideRange) {
  EXPECT_FALSE(ComputeProbabilities(kXs, kYs, 1.0, 1.5).ok());
  EXPECT_FALSE(ComputeProbabilities(kXs, kYs, 1.0, -1.5).ok());
}

TEST(BruteForceLEstimator, PaperExampleOneAnswer) {
  // Example 1: α = 0.1 → answer ≈ 5.67 (exact: 2864/5070 + 0.9·17/3).
  auto mu_hat = BruteForceLEstimator(kXs, kYs, 1.0, 0.1);
  ASSERT_TRUE(mu_hat.ok());
  EXPECT_NEAR(mu_hat.value(), 5.6649, 5e-4);
}

TEST(BruteForceLEstimator, AlphaZeroIsSampleMean) {
  auto mu_hat = BruteForceLEstimator(kXs, kYs, 1.0, 0.0);
  ASSERT_TRUE(mu_hat.ok());
  EXPECT_NEAR(mu_hat.value(), 17.0 / 3.0, 1e-12);
}

TEST(BruteForceLEstimator, LeverageDampensOutlierInfluence) {
  // With a strong leverage degree, the S/L re-weighting moves the estimate
  // toward the S side when S holds more probability mass (q > 1).
  std::vector<double> xs = {4.0, 5.0};
  std::vector<double> ys = {8.0};
  auto weak = BruteForceLEstimator(xs, ys, 5.0, 0.1);
  auto strong = BruteForceLEstimator(xs, ys, 5.0, 0.9);
  ASSERT_TRUE(weak.ok() && strong.ok());
  EXPECT_LT(strong.value(), weak.value());
}

}  // namespace
}  // namespace core
}  // namespace isla
