// Fuzz-style robustness tests for the distributed wire format: every
// truncation point of every message type must fail cleanly (no crash, no
// bogus acceptance), and random bit flips must never produce an
// out-of-protocol decode.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "distributed/message.h"
#include "stats/sketch.h"
#include "storage/file_block.h"
#include "util/rng.h"

namespace isla {
namespace distributed {
namespace {

std::vector<std::string> AllFrames() {
  PilotRequest pr{1, 2, 3};
  PilotResponse resp;
  resp.query_id = 4;
  resp.worker_id = 1;
  resp.block_rows = 100;
  resp.count = 10;
  resp.mean = 99.0;
  resp.m2 = 5.0;
  resp.min_value = -1.0;
  QueryPlan plan;
  plan.query_id = 6;
  plan.sample_count = 1000;
  plan.sketch0 = 100.0;
  plan.sigma = 20.0;
  PartialResult part;
  part.query_id = 7;
  part.avg = 100.0;
  GroupedScanRequest greq;
  greq.query_id = 8;
  greq.sample_count = 512;
  greq.has_predicate = 1;
  greq.op = core::PredicateOp::kLt;
  greq.literal = 42.0;
  greq.has_group = 1;
  GroupedScanResponse gresp;
  gresp.query_id = 9;
  gresp.worker_id = 3;
  gresp.partial.block_rows = 1000;
  gresp.partial.scanned = 64;
  for (double v : {1.0, 2.0, 5.0}) gresp.partial.all.Add(v);
  gresp.partial.groups[0.0].Add(1.0);
  gresp.partial.groups[2.0].Add(2.0);
  gresp.partial.groups[2.0].Add(5.0);
  RegisterFrame reg;
  reg.shard_id = 3;
  reg.port = 7101;
  reg.block_rows = 25'000;
  reg.fingerprint = 0xfeedface;
  reg.host = "10.0.0.7";
  RegisterAck ack;
  ack.shard_id = 3;
  ack.accepted = 1;
  ack.known_shards = 4;
  ack.epoch = 9;
  ShardFetchRequest fetch;
  fetch.shard_id = 3;
  fetch.column = kShardColumnValues;
  fetch.start_row = 128;
  fetch.max_rows = 64;
  ShardBlockChunk chunk;
  chunk.shard_id = 3;
  chunk.column = kShardColumnValues;
  chunk.column_present = 1;
  chunk.total_rows = 50;
  chunk.start_row = 10;
  chunk.rows = {0.5, 1.5, 2.5, -3.5};
  chunk.crc = storage::Crc32(chunk.rows.data(),
                             chunk.rows.size() * sizeof(double));
  SketchScanRequest sreq;
  sreq.scan = greq;
  sreq.scan.query_id = 10;
  SketchScanResponse sresp;
  sresp.query_id = 10;
  sresp.worker_id = 3;
  sresp.partial = gresp.partial;
  stats::QuantileSketch s0(4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s0.Add(v);
  stats::QuantileSketch s2(4);
  for (double v : {2.0, 5.0}) s2.Add(v);
  sresp.partial.sketches.emplace(0.0, std::move(s0));
  sresp.partial.sketches.emplace(2.0, std::move(s2));
  return {Encode(pr),   Encode(resp),  Encode(plan),  Encode(part),
          Encode(greq), Encode(gresp), Encode(reg),   Encode(ack),
          Encode(sreq), Encode(sresp), Encode(fetch), Encode(chunk)};
}

/// Attempts every decoder against a frame; returns how many accepted.
int CountAccepts(const std::string& frame) {
  int accepts = 0;
  accepts += DecodePilotRequest(frame).ok();
  accepts += DecodePilotResponse(frame).ok();
  accepts += DecodeQueryPlan(frame).ok();
  accepts += DecodePartialResult(frame).ok();
  accepts += DecodeGroupedScanRequest(frame).ok();
  accepts += DecodeGroupedScanResponse(frame).ok();
  accepts += DecodeRegisterFrame(frame).ok();
  accepts += DecodeRegisterAck(frame).ok();
  accepts += DecodeSketchScanRequest(frame).ok();
  accepts += DecodeSketchScanResponse(frame).ok();
  accepts += DecodeShardFetchRequest(frame).ok();
  accepts += DecodeShardBlockChunk(frame).ok();
  return accepts;
}

TEST(MessageFuzz, IntactFramesAcceptedByExactlyOneDecoder) {
  for (const auto& frame : AllFrames()) {
    EXPECT_EQ(CountAccepts(frame), 1);
  }
}

/// Parameterized over message index: every strict prefix must be rejected
/// by every decoder.
class TruncationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TruncationFuzz, EveryPrefixRejected) {
  std::string frame = AllFrames()[static_cast<size_t>(GetParam())];
  for (size_t len = 0; len < frame.size(); ++len) {
    std::string prefix = frame.substr(0, len);
    EXPECT_EQ(CountAccepts(prefix), 0) << "prefix length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMessages, TruncationFuzz,
                         ::testing::Range(0, 12));

/// Every single-byte extension must also be rejected (frames are
/// fixed-length per type).
class ExtensionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionFuzz, PaddedFramesRejected) {
  std::string frame = AllFrames()[static_cast<size_t>(GetParam())];
  for (char pad : {'\0', 'x', '\xff'}) {
    std::string padded = frame + pad;
    EXPECT_EQ(CountAccepts(padded), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMessages, ExtensionFuzz,
                         ::testing::Range(0, 12));

TEST(MessageFuzz, RandomBitFlipsNeverCrashAndTagFlipsAreCaught) {
  Xoshiro256 rng(0xf122);
  for (const auto& original : AllFrames()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::string frame = original;
      size_t pos = rng.NextBounded(frame.size());
      frame[pos] = static_cast<char>(frame[pos] ^
                                     (1u << rng.NextBounded(8)));
      // Must not crash; a flipped tag re-addresses the frame to another
      // type, which can decode when the lengths collide and every field
      // is unconstrained (tags 2 and 10 are one bit apart at 60 bytes
      // each) — but at most ONE decoder may ever claim a frame.
      int accepts = CountAccepts(frame);
      if (pos < 4) {
        EXPECT_LE(accepts, 1) << "tag flip multi-accepted";
      } else {
        // Payload flips keep the frame structurally valid for its own
        // decoder only.
        EXPECT_LE(accepts, 1);
      }
    }
  }
}

TEST(MessageFuzz, RandomGarbageRejected) {
  Xoshiro256 rng(0x6a47);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.NextBounded(200);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    // Garbage may collide with a valid tag + length by chance, but decoded
    // numeric fields must then still be readable without UB; we simply
    // require no crash and a deterministic verdict.
    int first = CountAccepts(garbage);
    int second = CountAccepts(garbage);
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace distributed
}  // namespace isla
