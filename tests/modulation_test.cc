// Unit + property tests for core/modulation.h: case selection, q tiers,
// step-length geometry, convergence, and Theorem 1.

#include <gtest/gtest.h>

#include <cmath>

#include "core/modulation.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults() {
  IslaOptions o;
  o.precision = 0.1;
  return o;
}

TEST(DeviationDegree, Ratio) {
  EXPECT_DOUBLE_EQ(DeviationDegree(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(DeviationDegree(150, 100), 1.5);
  EXPECT_DOUBLE_EQ(DeviationDegree(50, 100), 0.5);
  EXPECT_TRUE(std::isinf(DeviationDegree(1, 0)));
}

TEST(ChooseQ, BalancedGivesOne) {
  IslaOptions o = Defaults();
  EXPECT_DOUBLE_EQ(ChooseQ(1.0, o), 1.0);
  EXPECT_DOUBLE_EQ(ChooseQ(0.98, o), 1.0);
  EXPECT_DOUBLE_EQ(ChooseQ(1.02, o), 1.0);
}

TEST(ChooseQ, MildDeviationUsesQPrimeFive) {
  IslaOptions o = Defaults();
  // dev in (0.94, 0.97]: |S| < |L| → q = q' = 5.
  EXPECT_DOUBLE_EQ(ChooseQ(0.95, o), 5.0);
  // dev in [1.03, 1.06): |S| > |L| → q = 1/5.
  EXPECT_DOUBLE_EQ(ChooseQ(1.05, o), 0.2);
}

TEST(ChooseQ, SevereDeviationUsesQPrimeTen) {
  IslaOptions o = Defaults();
  EXPECT_DOUBLE_EQ(ChooseQ(0.90, o), 10.0);
  EXPECT_DOUBLE_EQ(ChooseQ(1.20, o), 0.1);
  EXPECT_DOUBLE_EQ(ChooseQ(0.5, o), 10.0);
}

TEST(ChooseQ, TierBoundaries) {
  IslaOptions o = Defaults();
  EXPECT_DOUBLE_EQ(ChooseQ(o.dev_mild_lo, o), 5.0);     // 0.97 inclusive
  EXPECT_DOUBLE_EQ(ChooseQ(o.dev_severe_lo, o), 10.0);  // 0.94 inclusive
  EXPECT_DOUBLE_EQ(ChooseQ(o.dev_mild_hi, o), 0.2);
  EXPECT_DOUBLE_EQ(ChooseQ(o.dev_severe_hi, o), 0.1);
}

TEST(DetermineCase, FourQuadrants) {
  IslaOptions o = Defaults();
  EXPECT_EQ(DetermineCase(-1.0, 100, 200, o), ModulationCase::kCase1);
  EXPECT_EQ(DetermineCase(-1.0, 200, 100, o), ModulationCase::kCase2);
  EXPECT_EQ(DetermineCase(+1.0, 100, 200, o), ModulationCase::kCase3);
  EXPECT_EQ(DetermineCase(+1.0, 200, 100, o), ModulationCase::kCase4);
}

TEST(DetermineCase, BalancedWindowIsCase5) {
  IslaOptions o = Defaults();
  EXPECT_EQ(DetermineCase(-1.0, 1000, 1000, o), ModulationCase::kCase5);
  EXPECT_EQ(DetermineCase(+1.0, 999, 1000, o), ModulationCase::kCase5);
}

TEST(DetermineCase, ZeroD0IsDegenerate) {
  IslaOptions o = Defaults();
  EXPECT_EQ(DetermineCase(0.0, 100, 200, o), ModulationCase::kDegenerate);
}

TEST(RunModulation, Case5ReturnsSketch0Unchanged) {
  ObjectiveCoefficients obj{/*k=*/1.0, /*c=*/99.0};
  auto res = RunModulation(obj, 100.0, 1000, 1000, Defaults());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->strategy, ModulationCase::kCase5);
  EXPECT_DOUBLE_EQ(res->mu_hat, 100.0);
  EXPECT_EQ(res->iterations, 0u);
}

TEST(RunModulation, ZeroKReturnsC) {
  ObjectiveCoefficients obj{/*k=*/0.0, /*c=*/99.0};
  auto res = RunModulation(obj, 100.0, 100, 200, Defaults());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->strategy, ModulationCase::kDegenerate);
  EXPECT_DOUBLE_EQ(res->mu_hat, 99.0);
}

TEST(RunModulation, ConvergesBelowThreshold) {
  ObjectiveCoefficients obj{/*k=*/-2.0, /*c=*/100.5};
  IslaOptions o = Defaults();
  auto res = RunModulation(obj, 100.0, 100, 200, o);  // Case 3.
  ASSERT_TRUE(res.ok());
  EXPECT_LE(std::abs(res->final_d), o.EffectiveThreshold() + 1e-12);
}

TEST(RunModulation, IterationCountMatchesPaperBound) {
  // t = ceil(log_{1/η}(|D0|/thr)) with η = 0.5.
  ObjectiveCoefficients obj{/*k=*/-2.0, /*c=*/100.5};
  IslaOptions o = Defaults();
  o.threshold = 0.001;
  auto res = RunModulation(obj, 100.0, 100, 200, o);
  ASSERT_TRUE(res.ok());
  double d0 = 0.5;
  uint64_t expected =
      static_cast<uint64_t>(std::ceil(std::log2(d0 / o.threshold)));
  EXPECT_EQ(res->iterations, expected);
}

TEST(RunModulation, EachRoundShrinksDByEta) {
  // With η = 0.5 and thr tiny, final |D| ≈ |D0|·η^t.
  ObjectiveCoefficients obj{/*k=*/1.5, /*c=*/99.0};
  IslaOptions o = Defaults();
  o.threshold = 1e-6;
  auto res = RunModulation(obj, 100.0, 200, 100, o);  // Case 2.
  ASSERT_TRUE(res.ok());
  double expected_final =
      -1.0 * std::pow(o.convergence_rate, static_cast<double>(res->iterations));
  EXPECT_NEAR(res->final_d, expected_final, 1e-9);
}

/// Property: the iterative answer converges to the closed-form limit for
/// all four cases and several (λ, η) settings.
struct CaseParam {
  double d0_sign;
  bool s_larger;
  double lambda;
  double eta;
};

class ClosedFormAgreement : public ::testing::TestWithParam<CaseParam> {};

TEST_P(ClosedFormAgreement, IterativeMatchesLimit) {
  auto p = GetParam();
  IslaOptions o = Defaults();
  o.step_length_factor = p.lambda;
  o.convergence_rate = p.eta;
  o.threshold = 1e-10;

  double sketch0 = 100.0;
  double c = sketch0 + p.d0_sign * 0.4;
  // |k| large enough that alpha never saturates, so the closed form holds.
  ObjectiveCoefficients obj{/*k=*/p.d0_sign > 0 ? -8.0 : 8.0, c};
  uint64_t s_count = p.s_larger ? 220 : 100;
  uint64_t l_count = p.s_larger ? 100 : 220;

  auto res = RunModulation(obj, sketch0, s_count, l_count, o);
  ASSERT_TRUE(res.ok());
  double d0 = c - sketch0;
  double limit =
      ClosedFormAnswer(res->strategy, c, d0, p.lambda, sketch0);
  EXPECT_NEAR(res->mu_hat, limit, 1e-7)
      << ModulationCaseName(res->strategy);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ClosedFormAgreement,
    ::testing::Values(CaseParam{-1.0, false, 0.8, 0.5},   // Case 1
                      CaseParam{-1.0, true, 0.8, 0.5},    // Case 2
                      CaseParam{+1.0, false, 0.8, 0.5},   // Case 3
                      CaseParam{+1.0, true, 0.8, 0.5},    // Case 4
                      CaseParam{-1.0, true, 0.5, 0.5},    // λ sweep
                      CaseParam{+1.0, false, 0.3, 0.5},
                      CaseParam{+1.0, true, 0.8, 0.25},   // η sweep
                      CaseParam{-1.0, false, 0.6, 0.75}));

TEST(RunModulation, Theorem1UnbiasedWhenLambdaMatchesDeviations) {
  // Theorem 1: estimators at deviations ε (near) and ε+ε' (far) on opposite
  // sides of µ meet exactly at µ when λ = ε/(ε+ε'). Case 3 geometry:
  // sketch0 below µ (far), µ̂ = c above µ (near).
  const double mu = 100.0;
  const double eps_near = 0.1;   // c's deviation (µ̂ is the λ-scaled mover)
  const double eps_far = 0.4;    // sketch0's deviation
  const double lambda = eps_near / eps_far;

  IslaOptions o = Defaults();
  o.step_length_factor = lambda;
  o.threshold = 1e-12;

  double sketch0 = mu - eps_far;
  double c = mu + eps_near;
  ObjectiveCoefficients obj{/*k=*/-1.0, c};
  auto res = RunModulation(obj, sketch0, 100, 220, o);  // Case 3.
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->strategy, ModulationCase::kCase3);
  EXPECT_NEAR(res->mu_hat, mu, 1e-9);
  EXPECT_NEAR(res->sketch, mu, 1e-9);
}

TEST(RunModulation, Case4ProducesNegativeAlpha) {
  // §V-C Case 4: "α is negative to balance such unbalanced sampling."
  // c > sketch0 > µ with |S| > |L| → q < 1 → k > 0 → µ̂ must decrease.
  ObjectiveCoefficients obj{/*k=*/2.0, /*c=*/100.6};
  auto res = RunModulation(obj, 100.0, 220, 100, Defaults());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->strategy, ModulationCase::kCase4);
  EXPECT_LT(res->alpha, 0.0);
  EXPECT_LT(res->mu_hat, 100.6);
}

TEST(RunModulation, AlphaSaturatesAtBound) {
  // A nearly flat objective (k ≈ 0, the q = 1 regime) cannot carry the
  // l-estimator far: α pins at ±1, µ̂ stays near c, and the sketch absorbs
  // the contraction. This is how q controls the strength of the leverage
  // effect.
  ObjectiveCoefficients obj{/*k=*/0.01, /*c=*/99.4};
  IslaOptions o = Defaults();
  o.threshold = 1e-9;
  auto res = RunModulation(obj, 100.0, 220, 100, o);  // Case 2.
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res->alpha, 1.0);
  EXPECT_NEAR(res->mu_hat, obj.c + 0.01, 1e-12);  // µ̂ moved only k·1.
  EXPECT_LE(std::abs(res->final_d), 1e-8);        // D still converged.
}

TEST(RunModulation, LargerKEscapesSaturation) {
  // Same geometry, strong slope: the λ meeting point is reached and α
  // stays interior — q > 1 "turns the leverage effect on".
  ObjectiveCoefficients obj{/*k=*/8.0, /*c=*/99.4};
  IslaOptions o = Defaults();
  o.threshold = 1e-9;
  auto res = RunModulation(obj, 100.0, 220, 100, o);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res->alpha, 1.0);
  EXPECT_NEAR(res->mu_hat,
              ClosedFormAnswer(ModulationCase::kCase2, 99.4, -0.6, 0.8,
                               100.0),
              1e-6);
}

TEST(RunModulation, Case2ProducesPositiveAlpha) {
  // Case 2 with k > 0 (q < 1): µ̂ increases via positive α.
  ObjectiveCoefficients obj{/*k=*/2.0, /*c=*/99.5};
  auto res = RunModulation(obj, 100.0, 220, 100, Defaults());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->strategy, ModulationCase::kCase2);
  EXPECT_GT(res->alpha, 0.0);
  EXPECT_GT(res->mu_hat, 99.5);
}

TEST(RunModulation, FinalMuHatEqualsKAlphaPlusC) {
  ObjectiveCoefficients obj{/*k=*/-1.7, /*c=*/100.3};
  auto res = RunModulation(obj, 100.0, 100, 220, Defaults());
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->mu_hat, obj.k * res->alpha + obj.c, 1e-12);
}

TEST(RunModulation, EstimatorsMeetAtConvergence) {
  // |µ̂_final − sketch_final| = |D_final| <= thr.
  ObjectiveCoefficients obj{/*k=*/-1.7, /*c=*/100.3};
  IslaOptions o = Defaults();
  o.threshold = 1e-8;
  auto res = RunModulation(obj, 100.0, 100, 220, o);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->mu_hat, res->sketch, 1e-7);
}

TEST(RunModulation, InvalidOptionsRejected) {
  ObjectiveCoefficients obj{1.0, 100.0};
  IslaOptions bad = Defaults();
  bad.step_length_factor = 1.5;
  EXPECT_FALSE(RunModulation(obj, 100.0, 100, 200, bad).ok());
}

TEST(ModulationCaseName, AllCases) {
  EXPECT_EQ(ModulationCaseName(ModulationCase::kCase1), "case1");
  EXPECT_EQ(ModulationCaseName(ModulationCase::kCase5), "case5(balanced)");
  EXPECT_EQ(ModulationCaseName(ModulationCase::kDegenerate), "degenerate");
}

}  // namespace
}  // namespace core
}  // namespace isla
