// Unit tests for stats/moments.h: compensated summation and the streaming
// power sums of Algorithm 1.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/moments.h"
#include "util/rng.h"

namespace isla {
namespace stats {
namespace {

TEST(CompensatedSum, SimpleTotal) {
  CompensatedSum s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Total(), 6.0);
}

TEST(CompensatedSum, RecoversCatastrophicCancellation) {
  // 1 + 1e100 - 1e100 must still be 1; naive summation returns 0.
  CompensatedSum s;
  s.Add(1.0);
  s.Add(1e100);
  s.Add(-1e100);
  EXPECT_DOUBLE_EQ(s.Total(), 1.0);
}

TEST(CompensatedSum, TinyIncrementsOnHugeBase) {
  CompensatedSum s;
  s.Add(1e16);
  for (int i = 0; i < 1000; ++i) s.Add(0.1);
  EXPECT_NEAR(s.Total() - 1e16, 100.0, 1e-6);
}

TEST(CompensatedSum, MergeEqualsSequential) {
  CompensatedSum a, b, all;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble() * 1e8 - 5e7;
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Total(), all.Total(), std::abs(all.Total()) * 1e-14 + 1e-9);
}

TEST(CompensatedSum, ResetClears) {
  CompensatedSum s;
  s.Add(5.0);
  s.Reset();
  EXPECT_DOUBLE_EQ(s.Total(), 0.0);
}

TEST(StreamingMoments, EmptyState) {
  StreamingMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 0.0);
}

TEST(StreamingMoments, PowerSumsMatchDefinition) {
  StreamingMoments m;
  for (double v : {2.0, 3.0, 5.0}) m.Add(v);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.sum(), 10.0);
  EXPECT_DOUBLE_EQ(m.sum_squares(), 4.0 + 9.0 + 25.0);
  EXPECT_DOUBLE_EQ(m.sum_cubes(), 8.0 + 27.0 + 125.0);
}

TEST(StreamingMoments, MeanAndVariance) {
  StreamingMoments m;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) m.Add(v);
  EXPECT_DOUBLE_EQ(m.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 2.5);  // Unbiased.
}

TEST(StreamingMoments, SingleValueHasZeroVariance) {
  StreamingMoments m;
  m.Add(7.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 0.0);
}

TEST(StreamingMoments, VarianceNeverNegative) {
  // Identical values on a huge offset: the naive power-sum formula cancels
  // catastrophically here; Welford must return ~0.
  StreamingMoments m;
  for (int i = 0; i < 1000; ++i) m.Add(1e9 + 1e-3);
  EXPECT_GE(m.Variance(), 0.0);
  EXPECT_NEAR(m.Variance(), 0.0, 1e-6);
}

TEST(StreamingMoments, VarianceStableOnHugeOffset) {
  // Small spread on a huge offset: Welford recovers the true variance.
  StreamingMoments m;
  for (int i = 0; i < 1000; ++i) m.Add(1e9 + (i % 2));
  EXPECT_NEAR(m.Variance(), 0.25, 0.01);
}

TEST(StreamingMoments, MergeIsOrderInsensitive) {
  // The paper's claim (§V-A): the objective's inputs are order-insensitive.
  StreamingMoments forward, backward;
  std::vector<double> values;
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextDouble() * 100);
  for (double v : values) forward.Add(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.Add(*it);
  }
  EXPECT_NEAR(forward.sum(), backward.sum(), 1e-9);
  EXPECT_NEAR(forward.sum_squares(), backward.sum_squares(), 1e-6);
  EXPECT_NEAR(forward.sum_cubes(), backward.sum_cubes(), 1e-3);
}

TEST(StreamingMoments, MergeMatchesSingleStream) {
  StreamingMoments a, b, all;
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble() * 50 + 75;
    (i < 400 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-8);
  EXPECT_NEAR(a.sum_squares(), all.sum_squares(), 1e-4);
  EXPECT_NEAR(a.sum_cubes(), all.sum_cubes(), 1e-1);
}

TEST(StreamingMoments, ResetClearsEverything) {
  StreamingMoments m;
  m.Add(4.0);
  m.Reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
  EXPECT_DOUBLE_EQ(m.sum_cubes(), 0.0);
}

TEST(StreamingMoments, LargeStreamPrecision) {
  // Σa over 700k values near 100 (cycle length divides n, so the exact
  // mean is 100.003): compensation keeps ~1e-12 error; naive accumulation
  // would drift well past that.
  StreamingMoments m;
  const int n = 700000;
  for (int i = 0; i < n; ++i) m.Add(100.0 + (i % 7) * 1e-3);
  double mean_expected = 100.0 + 3e-3;
  EXPECT_NEAR(m.Mean(), mean_expected, 1e-9);
}

}  // namespace
}  // namespace stats
}  // namespace isla
