// Fault-injection suite for the TCP transport: every wire-level failure a
// worker can inflict on a coordinator — truncated frames, corrupted CRCs,
// disconnects mid-scan, and stalls — must surface as a clean Status at the
// coordinator. No hang (deadlines bound every wait), no crash (the suite
// runs under the CI ASan+UBSan job), no wrong answer (a damaged frame can
// never decode into a plausible partial, thanks to the frame CRC and the
// per-message length checks).
//
// Faults are injected by net::FaultyConnection, wrapped around each
// accepted connection inside WorkerServer via WorkerServerOptions::fault.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/options.h"
#include "distributed/coordinator.h"
#include "distributed/worker.h"
#include "net/faulty_connection.h"
#include "net/tcp_transport.h"
#include "net/worker_server.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "util/rng.h"

namespace isla {
namespace net {
namespace {

std::unique_ptr<distributed::Worker> NormalWorker(uint64_t id,
                                                  uint64_t rows) {
  return std::make_unique<distributed::Worker>(
      id, std::make_shared<storage::GeneratorBlock>(
              std::make_shared<stats::NormalDistribution>(100.0, 20.0), rows,
              SplitMix64::Hash(5150, id)));
}

/// Runs one distributed AVG against a 2-worker cluster where worker 1 is
/// faulty, and returns the coordinator's status. The healthy worker 0
/// proves the coordinator keeps distinguishing good peers from bad ones.
Status RunWithFaultyWorker(FaultMode mode, uint64_t fault_after_sends,
                           int64_t call_deadline_millis = 2'000) {
  auto healthy = std::make_unique<WorkerServer>(NormalWorker(0, 100'000));
  EXPECT_TRUE(healthy->Start().ok());

  WorkerServerOptions faulty_options;
  faulty_options.fault = mode;
  faulty_options.fault_after_sends = fault_after_sends;
  auto faulty = std::make_unique<WorkerServer>(NormalWorker(1, 100'000),
                                               faulty_options);
  EXPECT_TRUE(faulty->Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = call_deadline_millis;
  TcpTransport transport(
      {{"127.0.0.1", healthy->port()}, {"127.0.0.1", faulty->port()}},
      topts);
  core::IslaOptions options;
  options.precision = 0.3;
  distributed::Coordinator coordinator(&transport, options);
  Status status = coordinator.AggregateAvg().status();
  // Explicit stops: the servers must unwind cleanly while a poisoned
  // connection is still half-open (leaks would trip ASan).
  faulty->Stop();
  healthy->Stop();
  return status;
}

TEST(FaultInjection, TruncatedFrameSurfacesAsCorruption) {
  Status s = RunWithFaultyWorker(FaultMode::kTruncateFrame,
                                 /*fault_after_sends=*/0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s;
}

TEST(FaultInjection, CorruptedCrcSurfacesAsCorruption) {
  Status s = RunWithFaultyWorker(FaultMode::kCorruptCrc,
                                 /*fault_after_sends=*/0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s;
}

TEST(FaultInjection, WorkerDisconnectMidScanSurfacesCleanly) {
  // The first two responses (σ pilot + sketch pilot) pass through cleanly,
  // then the worker drops the connection exactly when the coordinator is
  // waiting for the expensive plan-round partial — the mid-scan disconnect.
  Status s = RunWithFaultyWorker(FaultMode::kCloseInsteadOfSend,
                                 /*fault_after_sends=*/2);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError() || s.IsCorruption()) << s;
}

TEST(FaultInjection, StalledWorkerHitsDeadlineInsteadOfHanging) {
  // The worker accepts the plan but never answers. The per-call deadline
  // must fire; without it this test would hang the job (which is why the
  // CI satellite also adds a ctest timeout as a backstop).
  Status s = RunWithFaultyWorker(FaultMode::kStall,
                                 /*fault_after_sends=*/2,
                                 /*call_deadline_millis=*/300);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;
  EXPECT_NE(s.message().find("timed out"), std::string::npos) << s;
}

TEST(FaultInjection, StallOnFirstRequestAlsoBounded) {
  Status s = RunWithFaultyWorker(FaultMode::kStall,
                                 /*fault_after_sends=*/0,
                                 /*call_deadline_millis=*/300);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;
}

TEST(FaultInjection, GroupedScanFaultsSurfaceCleanly) {
  // The grouped path (metadata → pilot → main scan) crosses more frames;
  // inject a mid-run disconnect there too.
  std::vector<double> vals(50'000), ks(50'000);
  Xoshiro256 rng(7);
  for (size_t i = 0; i < vals.size(); ++i) {
    ks[i] = static_cast<double>(rng.NextBounded(3));
    vals[i] = ks[i] * 5.0 + rng.NextDouble();
  }
  auto vb = std::make_shared<storage::MemoryBlock>(std::move(vals));
  auto kb = std::make_shared<storage::MemoryBlock>(std::move(ks));

  WorkerServerOptions faulty_options;
  faulty_options.fault = FaultMode::kTruncateFrame;
  faulty_options.fault_after_sends = 2;  // metadata + pilot pass, scan dies
  WorkerServer server(
      std::make_unique<distributed::Worker>(0, vb, nullptr, kb),
      faulty_options);
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = 2'000;
  TcpTransport transport({{"127.0.0.1", server.port()}}, topts);
  core::IslaOptions options;
  options.precision = 0.5;
  distributed::Coordinator coordinator(&transport, options);
  distributed::GroupedQuerySpec wire;
  wire.has_group = true;
  auto r = coordinator.AggregateGrouped(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption() || r.status().IsIOError())
      << r.status();
}

TEST(FaultInjection, ErrorFrameCarriesTheWorkerStatus) {
  // Not a wire fault: a *request-level* failure (grouped scan against a
  // worker with no key shard) must cross the wire as an ErrorFrame and
  // come back as the worker's own FailedPrecondition, message intact.
  WorkerServer server(NormalWorker(0, 10'000));
  ASSERT_TRUE(server.Start().ok());
  TcpTransport transport({{"127.0.0.1", server.port()}});
  distributed::Coordinator coordinator(&transport, core::IslaOptions{});
  distributed::GroupedQuerySpec wire;
  wire.has_group = true;
  auto r = coordinator.AggregateGrouped(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status();
  EXPECT_NE(r.status().message().find("group column"), std::string::npos)
      << r.status();
}

TEST(FaultInjection, TransportRecoversAfterFaultyCall) {
  // A poisoned connection must not wedge the transport: the slot resets
  // and the next call reconnects. (The faulty server truncates every
  // response, so the retry fails the same way — but through a *fresh*
  // connection, proving the reset path. A healthy restart on the same
  // port is not portable to assert, so we check the error is stable.)
  WorkerServerOptions faulty_options;
  faulty_options.fault = FaultMode::kCorruptCrc;
  WorkerServer server(NormalWorker(0, 10'000), faulty_options);
  ASSERT_TRUE(server.Start().ok());

  TcpTransport transport({{"127.0.0.1", server.port()}});
  distributed::PilotRequest req{1, 10, 42};
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto r = transport.Call(0, distributed::Encode(req));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption()) << r.status();
  }
}

}  // namespace
}  // namespace net
}  // namespace isla
