// Fault-injection suite for the TCP transport: every wire-level failure a
// worker can inflict on a coordinator — truncated frames, corrupted CRCs,
// disconnects mid-scan, and stalls — must surface as a clean Status at the
// coordinator. No hang (deadlines bound every wait), no crash (the suite
// runs under the CI ASan+UBSan job), no wrong answer (a damaged frame can
// never decode into a plausible partial, thanks to the frame CRC and the
// per-message length checks).
//
// Faults are injected by net::FaultyConnection, wrapped around each
// accepted connection inside WorkerServer via WorkerServerOptions::fault.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "distributed/coordinator.h"
#include "distributed/failover.h"
#include "distributed/worker.h"
#include "net/connection.h"
#include "net/faulty_connection.h"
#include "net/partial.h"
#include "net/query_server.h"
#include "net/tcp_transport.h"
#include "net/worker_server.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "util/rng.h"
#include "util/timer.h"

namespace isla {
namespace net {
namespace {

std::unique_ptr<distributed::Worker> NormalWorker(uint64_t id,
                                                  uint64_t rows) {
  return std::make_unique<distributed::Worker>(
      id, std::make_shared<storage::GeneratorBlock>(
              std::make_shared<stats::NormalDistribution>(100.0, 20.0), rows,
              SplitMix64::Hash(5150, id)));
}

/// Runs one distributed AVG against a 2-worker cluster where worker 1 is
/// faulty, and returns the coordinator's status. The healthy worker 0
/// proves the coordinator keeps distinguishing good peers from bad ones.
Status RunWithFaultyWorker(FaultMode mode, uint64_t fault_after_sends,
                           int64_t call_deadline_millis = 2'000) {
  auto healthy = std::make_unique<WorkerServer>(NormalWorker(0, 100'000));
  EXPECT_TRUE(healthy->Start().ok());

  WorkerServerOptions faulty_options;
  faulty_options.fault = mode;
  faulty_options.fault_after_sends = fault_after_sends;
  auto faulty = std::make_unique<WorkerServer>(NormalWorker(1, 100'000),
                                               faulty_options);
  EXPECT_TRUE(faulty->Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = call_deadline_millis;
  TcpTransport transport(
      {{"127.0.0.1", healthy->port()}, {"127.0.0.1", faulty->port()}},
      topts);
  core::IslaOptions options;
  options.precision = 0.3;
  distributed::Coordinator coordinator(&transport, options);
  Status status = coordinator.AggregateAvg().status();
  // Explicit stops: the servers must unwind cleanly while a poisoned
  // connection is still half-open (leaks would trip ASan).
  faulty->Stop();
  healthy->Stop();
  return status;
}

TEST(FaultInjection, TruncatedFrameSurfacesAsCorruption) {
  Status s = RunWithFaultyWorker(FaultMode::kTruncateFrame,
                                 /*fault_after_sends=*/0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s;
}

TEST(FaultInjection, CorruptedCrcSurfacesAsCorruption) {
  Status s = RunWithFaultyWorker(FaultMode::kCorruptCrc,
                                 /*fault_after_sends=*/0);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s;
}

TEST(FaultInjection, WorkerDisconnectMidScanSurfacesCleanly) {
  // The first two responses (σ pilot + sketch pilot) pass through cleanly,
  // then the worker drops the connection exactly when the coordinator is
  // waiting for the expensive plan-round partial — the mid-scan disconnect.
  Status s = RunWithFaultyWorker(FaultMode::kCloseInsteadOfSend,
                                 /*fault_after_sends=*/2);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError() || s.IsCorruption()) << s;
}

TEST(FaultInjection, StalledWorkerHitsDeadlineInsteadOfHanging) {
  // The worker accepts the plan but never answers. The per-call deadline
  // must fire; without it this test would hang the job (which is why the
  // CI satellite also adds a ctest timeout as a backstop).
  Status s = RunWithFaultyWorker(FaultMode::kStall,
                                 /*fault_after_sends=*/2,
                                 /*call_deadline_millis=*/300);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;
  EXPECT_NE(s.message().find("timed out"), std::string::npos) << s;
}

TEST(FaultInjection, StallOnFirstRequestAlsoBounded) {
  Status s = RunWithFaultyWorker(FaultMode::kStall,
                                 /*fault_after_sends=*/0,
                                 /*call_deadline_millis=*/300);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s;
}

TEST(FaultInjection, GroupedScanFaultsSurfaceCleanly) {
  // The grouped path (metadata → pilot → main scan) crosses more frames;
  // inject a mid-run disconnect there too.
  std::vector<double> vals(50'000), ks(50'000);
  Xoshiro256 rng(7);
  for (size_t i = 0; i < vals.size(); ++i) {
    ks[i] = static_cast<double>(rng.NextBounded(3));
    vals[i] = ks[i] * 5.0 + rng.NextDouble();
  }
  auto vb = std::make_shared<storage::MemoryBlock>(std::move(vals));
  auto kb = std::make_shared<storage::MemoryBlock>(std::move(ks));

  WorkerServerOptions faulty_options;
  faulty_options.fault = FaultMode::kTruncateFrame;
  faulty_options.fault_after_sends = 2;  // metadata + pilot pass, scan dies
  WorkerServer server(
      std::make_unique<distributed::Worker>(0, vb, nullptr, kb),
      faulty_options);
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = 2'000;
  TcpTransport transport({{"127.0.0.1", server.port()}}, topts);
  core::IslaOptions options;
  options.precision = 0.5;
  distributed::Coordinator coordinator(&transport, options);
  distributed::GroupedQuerySpec wire;
  wire.has_group = true;
  auto r = coordinator.AggregateGrouped(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption() || r.status().IsIOError())
      << r.status();
}

TEST(FaultInjection, ErrorFrameCarriesTheWorkerStatus) {
  // Not a wire fault: a *request-level* failure (grouped scan against a
  // worker with no key shard) must cross the wire as an ErrorFrame and
  // come back as the worker's own FailedPrecondition, message intact.
  WorkerServer server(NormalWorker(0, 10'000));
  ASSERT_TRUE(server.Start().ok());
  TcpTransport transport({{"127.0.0.1", server.port()}});
  distributed::Coordinator coordinator(&transport, core::IslaOptions{});
  distributed::GroupedQuerySpec wire;
  wire.has_group = true;
  auto r = coordinator.AggregateGrouped(wire);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status();
  EXPECT_NE(r.status().message().find("group column"), std::string::npos)
      << r.status();
}

TEST(FaultInjection, TransportRecoversAfterFaultyCall) {
  // A poisoned connection must not wedge the transport: the slot resets
  // and the next call reconnects. (The faulty server truncates every
  // response, so the retry fails the same way — but through a *fresh*
  // connection, proving the reset path. A healthy restart on the same
  // port is not portable to assert, so we check the error is stable.)
  WorkerServerOptions faulty_options;
  faulty_options.fault = FaultMode::kCorruptCrc;
  WorkerServer server(NormalWorker(0, 10'000), faulty_options);
  ASSERT_TRUE(server.Start().ok());

  TcpTransport transport({{"127.0.0.1", server.port()}});
  distributed::PilotRequest req{1, 10, 42};
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto r = transport.Call(0, distributed::Encode(req));
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCorruption()) << r.status();
  }
}

TEST(FaultInjection, ClientDisconnectMidStreamLeavesOtherSessionsHealthy) {
  // A streaming client that hangs up between PARTIAL frames must only kill
  // its own statement: the server thread sees the failed send, drops the
  // session, and every other session — including ones co-batched on the
  // same scheduler — keeps answering, and new sessions are still accepted.
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());

  // Session B: a long-lived healthy session issuing scheduler-routed
  // queries concurrently with A's death.
  auto connect = [&]() {
    auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
    EXPECT_TRUE(conn.ok()) << conn.status();
    auto greeting = (*conn)->RecvFrame();
    EXPECT_TRUE(greeting.ok()) << greeting.status();
    return std::move(*conn);
  };
  auto roundtrip = [](Connection* conn, const std::string& statement) {
    EXPECT_TRUE(conn->SendFrame(statement).ok());
    auto response = conn->RecvFrame();
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  };

  std::unique_ptr<Connection> b = connect();
  roundtrip(b.get(),
            "CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4");

  // Session A: start a multi-round streaming statement, read the first
  // PARTIAL frame to prove the stream is live, then vanish without reading
  // the rest.
  {
    std::unique_ptr<Connection> a = connect();
    roundtrip(a.get(),
              "CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4");
    roundtrip(a.get(), "SET stream 8");
    ASSERT_TRUE(
        a->SendFrame("SELECT AVG(value) FROM s WITHIN 0.05").ok());
    auto first = a->RecvFrame();
    ASSERT_TRUE(first.ok()) << first.status();
    EXPECT_TRUE(IsPartialFrame(*first));
    a->Close();  // mid-stream disconnect: rounds 2..8 have nowhere to go
  }

  // B keeps working while A's session unwinds, across the scheduler path
  // (WHERE → grouped sampling) and the cache (repeat hits).
  for (int i = 0; i < 3; ++i) {
    std::string r = roundtrip(
        b.get(), "SELECT AVG(value) FROM t WHERE value >= 90 WITHIN 0.5");
    EXPECT_NE(r.find("ok\nAVG = "), std::string::npos) << r;
  }

  // And the server still accepts fresh sessions afterwards.
  std::unique_ptr<Connection> c = connect();
  EXPECT_NE(roundtrip(c.get(), "SHOW STATS").find("ok\nkernels = "),
            std::string::npos);
  server.Stop();
}

TEST(FaultInjection, ConcurrentBatchMembersSurviveOneMemberDisconnect) {
  // Several sessions submit the same query inside one admission window
  // while one of them drops its socket right after sending. The co-batched
  // members must all receive correct answers — the scheduler completes the
  // shared pass for everyone; only the dead member's response send fails.
  QueryServerOptions options;
  options.scheduler.admission_window_micros = 30'000;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string create =
      "CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4";
  const std::string query =
      "SELECT AVG(value) FROM t WHERE value >= 90 WITHIN 0.4";

  constexpr int kSurvivors = 3;
  std::vector<std::string> answers(kSurvivors);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSurvivors; ++s) {
    threads.emplace_back([&, s] {
      auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
      ASSERT_TRUE(conn.ok()) << conn.status();
      (*conn)->set_deadline_millis(60'000);
      ASSERT_TRUE((*conn)->RecvFrame().ok());
      ASSERT_TRUE((*conn)->SendFrame(create).ok());
      ASSERT_TRUE((*conn)->RecvFrame().ok());
      ASSERT_TRUE((*conn)->SendFrame(query).ok());
      auto response = (*conn)->RecvFrame();
      ASSERT_TRUE(response.ok()) << response.status();
      answers[s] = *response;
    });
  }
  threads.emplace_back([&] {
    auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
    ASSERT_TRUE(conn.ok()) << conn.status();
    ASSERT_TRUE((*conn)->RecvFrame().ok());
    ASSERT_TRUE((*conn)->SendFrame(create).ok());
    ASSERT_TRUE((*conn)->RecvFrame().ok());
    ASSERT_TRUE((*conn)->SendFrame(query).ok());
    (*conn)->Close();  // gone before the batch even closes
  });
  for (auto& t : threads) t.join();

  for (int s = 0; s < kSurvivors; ++s) {
    EXPECT_NE(answers[s].find("ok\nAVG = "), std::string::npos)
        << "session " << s << ": " << answers[s];
  }
  server.Stop();
}

TEST(WorkerKill, KilledMidQuerySurfacesCleanStatusWithoutHang) {
  // A worker process dying mid-query (not a wire glitch: the whole server
  // goes away while the coordinator waits on the plan-round response) must
  // surface as a clean Status well before the call deadline — the kill
  // closes the socket, and that EOF is what unblocks the coordinator.
  auto healthy = std::make_unique<WorkerServer>(NormalWorker(0, 100'000));
  ASSERT_TRUE(healthy->Start().ok());

  // The victim stalls at the plan round so the coordinator is provably
  // in-flight against it when the kill lands.
  WorkerServerOptions victim_options;
  victim_options.fault = FaultMode::kStall;
  victim_options.fault_after_sends = 2;
  auto victim = std::make_unique<WorkerServer>(NormalWorker(1, 100'000),
                                               victim_options);
  ASSERT_TRUE(victim->Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = 10'000;  // The kill, not this, must unblock.
  TcpTransport transport(
      {{"127.0.0.1", healthy->port()}, {"127.0.0.1", victim->port()}},
      topts);
  core::IslaOptions options;
  options.precision = 0.3;
  distributed::Coordinator coordinator(&transport, options);

  std::thread killer([&victim] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    victim->Stop();
  });
  Timer timer;
  Status status = coordinator.AggregateAvg().status();
  double elapsed = timer.ElapsedMillis();
  killer.join();

  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIOError() || status.IsCorruption()) << status;
  // Far under both the 10s call deadline and the ctest timeout: the
  // coordinator noticed the death, it did not wait anything out.
  EXPECT_LT(elapsed, 5'000.0) << "kill did not unblock the coordinator";
  healthy->Stop();
}

TEST(WorkerKill, ReplicatedShardSurvivesKillMidQueryBitIdentical) {
  // Same kill, but the shard has a second replica (same worker id, same
  // shard data): the failover transport must absorb the death and finish
  // the query with the answer the healthy cluster would have given.
  WorkerServerOptions victim_options;
  victim_options.fault = FaultMode::kStall;
  victim_options.fault_after_sends = 2;  // pilots pass, plan round stalls
  auto victim = std::make_unique<WorkerServer>(NormalWorker(0, 100'000),
                                               victim_options);
  ASSERT_TRUE(victim->Start().ok());
  auto replica = std::make_unique<WorkerServer>(NormalWorker(0, 100'000));
  ASSERT_TRUE(replica->Start().ok());

  TcpTransportOptions topts;
  topts.call_deadline_millis = 10'000;
  topts.reconnect_attempts = 1;
  TcpTransport inner(
      {{"127.0.0.1", victim->port()}, {"127.0.0.1", replica->port()}},
      topts);
  distributed::FailoverOptions fopts;
  fopts.enable_hedging = false;  // the kill, not a hedge, must save us
  fopts.backoff_base_millis = 1;
  fopts.backoff_max_millis = 5;
  // Shard 0 prefers channel 0 — exactly the server we kill mid-query.
  distributed::FailoverTransport transport(&inner, {{0, 1}}, fopts);

  core::IslaOptions options;
  options.precision = 0.3;
  distributed::Coordinator coordinator(&transport, options);

  std::thread killer([&victim] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    victim->Stop();
  });
  auto degraded = coordinator.AggregateAvg();
  killer.join();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_GE(degraded->failover.failovers, 1u);
  EXPECT_EQ(degraded->failover.exhausted, 0u);

  // Bit-identical to the healthy answer: per-block RNG streams make the
  // surviving replica produce exactly what the dead one would have.
  std::vector<std::unique_ptr<distributed::Worker>> local;
  local.push_back(NormalWorker(0, 100'000));
  distributed::LoopbackTransport loopback(std::move(local));
  distributed::Coordinator reference(&loopback, options);
  auto healthy = reference.AggregateAvg();
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(degraded->average, healthy->average);
  EXPECT_EQ(degraded->sum, healthy->sum);
  EXPECT_EQ(degraded->total_samples, healthy->total_samples);
  replica->Stop();
}

}  // namespace
}  // namespace net
}  // namespace isla
