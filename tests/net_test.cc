// Tests for the src/net transport: wire framing, Connection/Listener over
// real loopback TCP, deadline behaviour, the ThreadGroup runtime helper,
// and the TCP-distributed execution path (WorkerServer + TcpTransport)
// whose answers must be bit-identical to the in-process loopback
// transport and to the single-node engine.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/group_by.h"
#include "distributed/coordinator.h"
#include "distributed/message.h"
#include "distributed/worker.h"
#include "net/connection.h"
#include "net/frame.h"
#include "net/partial.h"
#include "net/query_server.h"
#include "net/tcp_transport.h"
#include "net/worker_server.h"
#include "runtime/thread_pool.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "util/rng.h"

namespace isla {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(Frame, RoundTrip) {
  std::string payload = "hello, distributed world";
  std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  auto header = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->payload_length, payload.size());
  EXPECT_TRUE(
      VerifyFramePayload(*header, frame.substr(kFrameHeaderBytes)).ok());
}

TEST(Frame, EmptyPayload) {
  std::string frame = EncodeFrame("");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  auto header = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->payload_length, 0u);
  EXPECT_TRUE(VerifyFramePayload(*header, "").ok());
}

TEST(Frame, BadMagicRejected) {
  std::string frame = EncodeFrame("x");
  frame[0] ^= 0xff;
  EXPECT_TRUE(DecodeFrameHeader(frame.data()).status().IsCorruption());
}

TEST(Frame, OversizeLengthRejectedBeforeAllocation) {
  std::string frame = EncodeFrame("x");
  uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 4, &huge, sizeof(huge));
  EXPECT_TRUE(DecodeFrameHeader(frame.data()).status().IsCorruption());
}

TEST(Frame, CorruptPayloadFailsCrc) {
  std::string payload = "precision matters";
  std::string frame = EncodeFrame(payload);
  frame[kFrameHeaderBytes + 3] ^= 0x10;
  auto header = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(header.ok());
  EXPECT_TRUE(VerifyFramePayload(*header, frame.substr(kFrameHeaderBytes))
                  .IsCorruption());
}

TEST(Frame, LengthMismatchFails) {
  std::string frame = EncodeFrame("abcdef");
  auto header = DecodeFrameHeader(frame.data());
  ASSERT_TRUE(header.ok());
  EXPECT_TRUE(VerifyFramePayload(*header, "abc").IsCorruption());
}

// ---------------------------------------------------------------------------
// Connection / Listener over loopback TCP
// ---------------------------------------------------------------------------

struct Pair {
  std::unique_ptr<Listener> listener;
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
};

/// Builds a connected client/server pair over 127.0.0.1.
Pair Connect() {
  Pair p;
  auto listener = Listener::Bind(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  p.listener = std::move(*listener);
  auto client = TcpConnect("127.0.0.1", p.listener->port(), 2'000);
  EXPECT_TRUE(client.ok()) << client.status();
  p.client = std::move(*client);
  auto server = p.listener->Accept(2'000);
  EXPECT_TRUE(server.ok()) << server.status();
  p.server = std::move(*server);
  return p;
}

TEST(Connection, FrameRoundTripBothDirections) {
  Pair p = Connect();
  ASSERT_TRUE(p.client->SendFrame("ping").ok());
  auto got = p.server->RecvFrame();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, "ping");

  ASSERT_TRUE(p.server->SendFrame("pong").ok());
  auto back = p.client->RecvFrame();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "pong");
}

TEST(Connection, LargeFrame) {
  Pair p = Connect();
  std::string big(3 << 20, 'x');
  for (size_t i = 0; i < big.size(); i += 7919) big[i] = char('a' + i % 26);
  // Writer on a thread: a 3 MiB frame overflows the socket buffers, so a
  // same-thread send would deadlock against the unread receive side.
  std::thread writer(
      [&] { EXPECT_TRUE(p.client->SendFrame(big).ok()); });
  auto got = p.server->RecvFrame();
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, big);
}

TEST(Connection, EmptyFrame) {
  Pair p = Connect();
  ASSERT_TRUE(p.client->SendFrame("").ok());
  auto got = p.server->RecvFrame();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "");
}

TEST(Connection, GarbageBytesSurfaceAsCorruption) {
  Pair p = Connect();
  ASSERT_TRUE(p.client->SendRaw("this is not a frame at all!!").ok());
  auto got = p.server->RecvFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status();
}

TEST(Connection, TruncatedFrameIsCorruption) {
  Pair p = Connect();
  std::string frame = EncodeFrame("we never finish this frame");
  ASSERT_TRUE(
      p.client->SendRaw(std::string_view(frame.data(), frame.size() - 5))
          .ok());
  p.client->Close();
  auto got = p.server->RecvFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status();
}

TEST(Connection, CleanCloseIsIOError) {
  Pair p = Connect();
  p.client->Close();
  auto got = p.server->RecvFrame();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError()) << got.status();
  EXPECT_NE(got.status().message().find("closed"), std::string::npos);
}

TEST(Connection, RecvDeadlineFiresInsteadOfHanging) {
  Pair p = Connect();
  p.server->set_deadline_millis(100);
  auto got = p.server->RecvFrame();  // Client sends nothing.
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError());
  EXPECT_NE(got.status().message().find("timed out"), std::string::npos)
      << got.status();
}

TEST(Connection, ConnectToDeadPortFails) {
  // Bind then close a listener to get a port that refuses connections.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = (*listener)->port();
  (*listener)->Close();
  auto conn = TcpConnect("127.0.0.1", port, 500);
  EXPECT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsIOError()) << conn.status();
}

TEST(Connection, BadHostRejected) {
  auto conn = TcpConnect("not-an-address", 80, 100);
  EXPECT_TRUE(conn.status().IsInvalidArgument());
}

TEST(Endpoint, ParseValidAndInvalid) {
  auto e = ParseEndpoint("10.0.0.3:7101");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->host, "10.0.0.3");
  EXPECT_EQ(e->port, 7101);
  EXPECT_TRUE(ParseEndpoint("nohost").status().IsInvalidArgument());
  EXPECT_TRUE(ParseEndpoint("h:").status().IsInvalidArgument());
  EXPECT_TRUE(ParseEndpoint(":80").status().IsInvalidArgument());
  EXPECT_TRUE(ParseEndpoint("h:0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseEndpoint("h:99999").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// runtime::ThreadGroup
// ---------------------------------------------------------------------------

TEST(ThreadGroup, JoinsEverything) {
  std::atomic<int> ran{0};
  {
    runtime::ThreadGroup group;
    for (int i = 0; i < 16; ++i) {
      group.Spawn([&] { ran.fetch_add(1); });
    }
    group.JoinAll();
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(group.spawned_count(), 16u);
  }
}

TEST(ThreadGroup, SpawnFromSpawnedThreadIsJoined) {
  std::atomic<int> ran{0};
  runtime::ThreadGroup group;
  group.Spawn([&] {
    ran.fetch_add(1);
    group.Spawn([&] { ran.fetch_add(1); });
  });
  group.JoinAll();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(group.spawned_count(), 2u);
}

// ---------------------------------------------------------------------------
// WorkerServer + TcpTransport: the TCP-distributed execution path
// ---------------------------------------------------------------------------

std::unique_ptr<distributed::Worker> NormalWorker(uint64_t id,
                                                  uint64_t rows) {
  return std::make_unique<distributed::Worker>(
      id, std::make_shared<storage::GeneratorBlock>(
              std::make_shared<stats::NormalDistribution>(100.0, 20.0), rows,
              SplitMix64::Hash(5150, id)));
}

/// A cluster of worker daemons on ephemeral loopback ports.
struct Cluster {
  std::vector<std::unique_ptr<WorkerServer>> servers;
  std::vector<Endpoint> endpoints;

  static Cluster StartNormal(uint64_t workers, uint64_t rows) {
    Cluster c;
    for (uint64_t w = 0; w < workers; ++w) {
      auto server = std::make_unique<WorkerServer>(NormalWorker(w, rows));
      EXPECT_TRUE(server->Start().ok());
      c.endpoints.push_back({"127.0.0.1", server->port()});
      c.servers.push_back(std::move(server));
    }
    return c;
  }
};

TEST(TcpTransport, AggregateAvgBitIdenticalToLoopback) {
  constexpr uint64_t kWorkers = 4;
  constexpr uint64_t kRows = 2'000'000;
  core::IslaOptions options;
  options.precision = 0.3;

  // Loopback reference: the identical workers behind the in-process
  // transport.
  std::vector<std::unique_ptr<distributed::Worker>> loop_workers;
  for (uint64_t w = 0; w < kWorkers; ++w) {
    loop_workers.push_back(NormalWorker(w, kRows));
  }
  distributed::LoopbackTransport loopback(std::move(loop_workers));
  distributed::Coordinator loop_coord(&loopback, options);
  auto loop = loop_coord.AggregateAvg();
  ASSERT_TRUE(loop.ok()) << loop.status();

  Cluster cluster = Cluster::StartNormal(kWorkers, kRows);
  TcpTransport transport(cluster.endpoints);
  distributed::Coordinator tcp_coord(&transport, options);
  auto tcp = tcp_coord.AggregateAvg();
  ASSERT_TRUE(tcp.ok()) << tcp.status();

  // Bit-identical: the same request frames produce the same response
  // frames; TCP only changes the carrier.
  EXPECT_EQ(tcp->average, loop->average);
  EXPECT_EQ(tcp->sum, loop->sum);
  EXPECT_EQ(tcp->data_size, loop->data_size);
  EXPECT_EQ(tcp->total_samples, loop->total_samples);
  EXPECT_EQ(tcp->sigma_estimate, loop->sigma_estimate);
  EXPECT_EQ(tcp->sketch0, loop->sketch0);
  ASSERT_EQ(tcp->partials.size(), loop->partials.size());
  for (size_t w = 0; w < tcp->partials.size(); ++w) {
    EXPECT_EQ(tcp->partials[w].avg, loop->partials[w].avg);
    EXPECT_EQ(tcp->partials[w].samples_drawn,
              loop->partials[w].samples_drawn);
    EXPECT_EQ(tcp->partials[w].iterations, loop->partials[w].iterations);
  }
}

TEST(TcpTransport, BitIdenticalAcrossCoordinatorParallelism) {
  constexpr uint64_t kWorkers = 4;
  Cluster cluster = Cluster::StartNormal(kWorkers, 500'000);
  std::vector<double> averages;
  for (uint32_t parallelism : {1u, 2u, 8u}) {
    TcpTransport transport(cluster.endpoints);
    core::IslaOptions options;
    options.precision = 0.3;
    options.parallelism = parallelism;
    distributed::Coordinator coordinator(&transport, options);
    auto r = coordinator.AggregateAvg();
    ASSERT_TRUE(r.ok()) << r.status();
    averages.push_back(r->average);
  }
  EXPECT_EQ(averages[0], averages[1]);
  EXPECT_EQ(averages[0], averages[2]);
}

TEST(TcpTransport, GroupedBitIdenticalToLocalEngine) {
  // Row-aligned (value, predicate, key) shards served over real TCP must
  // reproduce the single-node GroupByEngine answer bit for bit.
  constexpr uint64_t kBlocks = 3;
  constexpr uint64_t kRowsPerBlock = 40'000;
  storage::Column values("v"), preds("p"), keys("k");
  Cluster cluster;
  Xoshiro256 rng(991);
  for (uint64_t b = 0; b < kBlocks; ++b) {
    std::vector<double> vals, ps, ks;
    for (uint64_t i = 0; i < kRowsPerBlock; ++i) {
      double key = static_cast<double>(rng.NextBounded(3));
      vals.push_back(10.0 * (key + 1.0) + rng.NextDouble());
      ps.push_back(rng.NextDouble());
      ks.push_back(key);
    }
    auto vb = std::make_shared<storage::MemoryBlock>(std::move(vals));
    auto pb = std::make_shared<storage::MemoryBlock>(std::move(ps));
    auto kb = std::make_shared<storage::MemoryBlock>(std::move(ks));
    ASSERT_TRUE(values.AppendBlock(vb).ok());
    ASSERT_TRUE(preds.AppendBlock(pb).ok());
    ASSERT_TRUE(keys.AppendBlock(kb).ok());
    auto server = std::make_unique<WorkerServer>(
        std::make_unique<distributed::Worker>(b, vb, pb, kb));
    ASSERT_TRUE(server->Start().ok());
    cluster.endpoints.push_back({"127.0.0.1", server->port()});
    cluster.servers.push_back(std::move(server));
  }

  core::IslaOptions options;
  options.precision = 0.3;

  core::GroupedSpec spec;
  spec.values = &values;
  spec.predicate = &preds;
  spec.op = core::PredicateOp::kGe;
  spec.literal = 0.25;
  spec.keys = &keys;
  core::GroupByEngine engine(options);
  auto local = engine.Aggregate(spec);
  ASSERT_TRUE(local.ok()) << local.status();

  TcpTransport transport(cluster.endpoints);
  distributed::Coordinator coordinator(&transport, options);
  distributed::GroupedQuerySpec wire;
  wire.has_predicate = true;
  wire.op = core::PredicateOp::kGe;
  wire.literal = 0.25;
  wire.has_group = true;
  auto dist = coordinator.AggregateGrouped(wire);
  ASSERT_TRUE(dist.ok()) << dist.status();

  ASSERT_EQ(dist->groups.size(), local->groups.size());
  EXPECT_EQ(dist->scanned_samples, local->scanned_samples);
  for (size_t g = 0; g < local->groups.size(); ++g) {
    EXPECT_EQ(dist->groups[g].key, local->groups[g].key);
    EXPECT_EQ(dist->groups[g].average, local->groups[g].average);
    EXPECT_EQ(dist->groups[g].sum, local->groups[g].sum);
    EXPECT_EQ(dist->groups[g].count_estimate,
              local->groups[g].count_estimate);
    EXPECT_EQ(dist->groups[g].ci_half_width, local->groups[g].ci_half_width);
    EXPECT_EQ(dist->groups[g].samples, local->groups[g].samples);
  }
}

TEST(TcpTransport, UnknownWorkerIdIsNotFound) {
  TcpTransport transport({});
  EXPECT_TRUE(transport.Call(0, "x").status().IsNotFound());
}

TEST(TcpTransport, UnreachableWorkerIsCleanIOError) {
  // A port with nothing listening: connect (or the call) must fail with a
  // clean status, not hang.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t dead_port = (*listener)->port();
  (*listener)->Close();

  TcpTransportOptions topts;
  topts.connect_timeout_millis = 500;
  TcpTransport transport({{"127.0.0.1", dead_port}}, topts);
  distributed::Coordinator coordinator(&transport, core::IslaOptions{});
  auto r = coordinator.AggregateAvg();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status();
}

// ---------------------------------------------------------------------------
// QueryServer: concurrent mini-SQL sessions
// ---------------------------------------------------------------------------

/// One client session against a QueryServer: sends a statement, returns
/// the response payload.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    auto conn = TcpConnect("127.0.0.1", port, 2'000);
    EXPECT_TRUE(conn.ok()) << conn.status();
    conn_ = std::move(*conn);
    auto greeting = conn_->RecvFrame();
    EXPECT_TRUE(greeting.ok()) << greeting.status();
  }

  std::string Send(const std::string& statement) {
    EXPECT_TRUE(conn_->SendFrame(statement).ok());
    auto response = conn_->RecvFrame();
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  }

  Connection* conn() { return conn_.get(); }

 private:
  std::unique_ptr<Connection> conn_;
};

TEST(QueryServer, SessionRoundTrip) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  std::string r = client.Send(
      "CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4");
  EXPECT_NE(r.find("ok\ncreated table s"), std::string::npos) << r;
  r = client.Send("SELECT AVG(value) FROM s WITHIN 0.5");
  EXPECT_NE(r.find("ok\nAVG = "), std::string::npos) << r;
  r = client.Send("SELECT AVG(value) FROM ghost");
  EXPECT_NE(r.find("error: NotFound"), std::string::npos) << r;
  r = client.Send("quit");
  EXPECT_NE(r.find("bye"), std::string::npos) << r;
  server.Stop();
  EXPECT_EQ(server.sessions_served(), 1u);
}

TEST(QueryServer, SessionsAreIsolated) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  {
    TestClient a(server.port());
    TestClient b(server.port());

    // a's table is invisible to b; b's SET does not affect a.
    a.Send("CREATE TABLE t FROM UNIFORM(0, 1) ROWS 1e5 BLOCKS 2");
    EXPECT_NE(b.Send("SELECT AVG(value) FROM t").find("error: NotFound"),
              std::string::npos);
    EXPECT_NE(b.Send("SET precision 2.5").find("ok\n"), std::string::npos);
    EXPECT_NE(b.Send("SHOW SETTINGS").find("precision = 2.5"),
              std::string::npos);
    EXPECT_NE(a.Send("SHOW SETTINGS").find("precision = 0.1"),
              std::string::npos);
    // An invalid SET must not corrupt b's settings.
    EXPECT_NE(b.Send("SET confidence 7").find("error: InvalidArgument"),
              std::string::npos);
    EXPECT_NE(b.Send("SHOW SETTINGS").find("confidence = 0.95"),
              std::string::npos);
  }
  server.Stop();
  EXPECT_EQ(server.sessions_served(), 2u);
}

TEST(QueryServer, ConcurrentSessionsQueryInParallel) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  constexpr int kSessions = 4;
  std::array<std::string, kSessions> answers;
  std::vector<std::thread> clients;
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      TestClient client(server.port());
      client.Send("CREATE TABLE t FROM NORMAL(" + std::to_string(50 + s) +
                  ", 5) ROWS 1e6 BLOCKS 4 SEED " + std::to_string(s));
      answers[s] = client.Send("SELECT AVG(value) FROM t WITHIN 0.5");
      client.Send("quit");
    });
  }
  for (auto& t : clients) t.join();
  for (int s = 0; s < kSessions; ++s) {
    size_t at = answers[s].find("ok\nAVG = ");
    ASSERT_NE(at, std::string::npos) << "session " << s << ": " << answers[s];
    double avg = std::strtod(answers[s].c_str() + at + 9, nullptr);
    EXPECT_NEAR(avg, 50.0 + s, 1.0) << "session " << s << ": " << answers[s];
  }
  server.Stop();
  EXPECT_EQ(server.sessions_served(), static_cast<uint64_t>(kSessions));
}

TEST(QueryServer, RestartAcceptsNewSessions) {
  // Stop() leaves the stop flag set; Start() must reset it, or a
  // restarted server listens but never accepts.
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  { TestClient client(server.port()); client.Send("SHOW TABLES"); }
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  TestClient again(server.port());
  EXPECT_NE(again.Send("SHOW TABLES").find("ok\n"), std::string::npos);
  server.Stop();
  EXPECT_EQ(server.sessions_served(), 2u);
}

/// Blanks the wall-clock segment ("..., 1.2345 ms]") of a response so two
/// executions can be compared on their answer bytes alone.
std::string StripTiming(std::string s) {
  size_t end = s.find(" ms]");
  if (end == std::string::npos) return s;
  size_t start = s.rfind(", ", end);
  if (start == std::string::npos) return s;
  return s.erase(start, end - start);
}

/// Sends a statement and splits the response stream into PARTIAL frames
/// plus the final text response.
std::string SendStreaming(TestClient* client, const std::string& statement,
                          std::vector<PartialFrame>* partials) {
  EXPECT_TRUE(client->conn()->SendFrame(statement).ok());
  while (true) {
    auto response = client->conn()->RecvFrame();
    EXPECT_TRUE(response.ok()) << response.status();
    if (!response.ok()) return std::string();
    if (!IsPartialFrame(*response)) return *response;
    auto frame = DecodePartialFrame(*response);
    EXPECT_TRUE(frame.ok()) << frame.status();
    if (frame.ok()) partials->push_back(*frame);
  }
}

TEST(QueryServer, StreamingSelectEmitsTighteningPartials) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  client.Send("CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4");
  EXPECT_NE(client.Send("SET stream 3").find("ok\n"), std::string::npos);

  std::vector<PartialFrame> partials;
  std::string final_response = SendStreaming(
      &client, "SELECT AVG(value) FROM s WITHIN 0.2", &partials);
  EXPECT_NE(final_response.find("ok\nAVG = "), std::string::npos)
      << final_response;
  EXPECT_NE(final_response.find("rounds=3"), std::string::npos)
      << final_response;

  // The ladder: three rounds at e·2^(R−r) = 0.8, 0.4, 0.2, strictly
  // tightening CIs, monotone cumulative sample counts.
  ASSERT_EQ(partials.size(), 3u);
  for (size_t i = 0; i < partials.size(); ++i) {
    EXPECT_EQ(partials[i].round, i + 1);
    EXPECT_EQ(partials[i].total_rounds, 3u);
    EXPECT_EQ(partials[i].confidence, 0.95);
    EXPECT_NEAR(partials[i].value, 100.0, 5.0);
  }
  EXPECT_EQ(partials[0].ci_half_width, 0.8);
  EXPECT_EQ(partials[1].ci_half_width, 0.4);
  EXPECT_EQ(partials[2].ci_half_width, 0.2);
  EXPECT_LE(partials[0].samples, partials[1].samples);
  EXPECT_LE(partials[1].samples, partials[2].samples);

  // The final round's answer IS the final response's answer.
  size_t at = final_response.find("AVG = ");
  ASSERT_NE(at, std::string::npos);
  double final_avg = std::strtod(final_response.c_str() + at + 6, nullptr);
  EXPECT_NEAR(final_avg, partials[2].value, 1e-4);

  // SET stream 0 turns streaming back off: no partial frames.
  client.Send("SET stream 0");
  std::vector<PartialFrame> none;
  std::string plain = SendStreaming(
      &client, "SELECT AVG(value) FROM s WITHIN 0.2", &none);
  EXPECT_NE(plain.find("ok\nAVG = "), std::string::npos) << plain;
  EXPECT_TRUE(none.empty());
  server.Stop();
}

TEST(QueryServer, StreamingIsDeterministicAcrossSessions) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  auto run = [&](std::vector<PartialFrame>* partials) {
    TestClient client(server.port());
    client.Send("CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4");
    client.Send("SET stream 4");
    return SendStreaming(&client, "SELECT SUM(value) FROM s WITHIN 0.4",
                         partials);
  };
  std::vector<PartialFrame> a, b;
  std::string final_a = run(&a);
  std::string final_b = run(&b);
  EXPECT_EQ(StripTiming(final_a), StripTiming(final_b));
  EXPECT_NE(final_a.find("ok\nSUM = "), std::string::npos) << final_a;
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << "round " << i + 1;
    EXPECT_EQ(a[i].ci_half_width, b[i].ci_half_width) << "round " << i + 1;
    EXPECT_EQ(a[i].samples, b[i].samples) << "round " << i + 1;
  }
  server.Stop();
}

TEST(QueryServer, StreamingSkipsIneligibleStatements) {
  // GROUP BY / WHERE / COUNT / non-isla methods run single-shot even with
  // stream set: exactly one response frame, no partials.
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  client.Send(
      "CREATE TABLE g FROM NORMAL(100, 20) ROWS 1e5 BLOCKS 4 GROUPS 4");
  client.Send("SET stream 3");
  for (const char* statement :
       {"SELECT AVG(value) FROM g GROUP BY grp WITHIN 0.5",
        "SELECT AVG(value) FROM g WHERE value >= 100 WITHIN 0.5",
        "SELECT COUNT(value) FROM g WITHIN 0.5",
        "SELECT AVG(value) FROM g WITHIN 0.5 USING uniform"}) {
    std::vector<PartialFrame> partials;
    std::string response = SendStreaming(&client, statement, &partials);
    EXPECT_NE(response.find("ok\n"), std::string::npos)
        << statement << " -> " << response;
    EXPECT_TRUE(partials.empty()) << statement;
  }
  server.Stop();
}

TEST(QueryServer, ShowStatsSurfacesKernelTierAndCacheCounters) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  std::string stats = client.Send("SHOW STATS");
  EXPECT_NE(stats.find("kernels = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("scan_scheduler = on"), std::string::npos) << stats;
  EXPECT_NE(stats.find("result_cache_hits = 0"), std::string::npos) << stats;

  // SHOW SETTINGS also reports the kernel tier and the stream knob.
  std::string settings = client.Send("SHOW SETTINGS");
  EXPECT_NE(settings.find("kernels = "), std::string::npos) << settings;
  EXPECT_NE(settings.find("stream = 0"), std::string::npos) << settings;

  // A repeated sampled grouped query flows through the shared scheduler:
  // the second run is a result-cache hit, visible in SHOW STATS.
  client.Send("CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e5 BLOCKS 4");
  std::string first =
      client.Send("SELECT AVG(value) FROM t WHERE value >= 90 WITHIN 0.5");
  EXPECT_NE(first.find("ok\nAVG = "), std::string::npos) << first;
  std::string second =
      client.Send("SELECT AVG(value) FROM t WHERE value >= 90 WITHIN 0.5");
  // The cache hit returns the exact answer bytes (timing aside).
  EXPECT_EQ(StripTiming(first), StripTiming(second));
  stats = client.Send("SHOW STATS");
  EXPECT_NE(stats.find("result_cache_hits = 1"), std::string::npos) << stats;
  server.Stop();
}

TEST(QueryServer, SchedulerCachesAreSharedAcrossSessions) {
  // Two sessions with identical CREATE recipes produce content-identical
  // generator columns, so the second session's identical query is a
  // result-cache hit — the cross-session reuse the scheduler exists for.
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string create = "CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e5 BLOCKS 4";
  std::string query = "SELECT AVG(value) FROM t WHERE value >= 90 WITHIN 0.5";
  TestClient a(server.port());
  a.Send(create);
  std::string answer_a = a.Send(query);
  TestClient b(server.port());
  b.Send(create);
  std::string answer_b = b.Send(query);
  EXPECT_EQ(StripTiming(answer_a), StripTiming(answer_b));
  std::string stats = b.Send("SHOW STATS");
  EXPECT_NE(stats.find("result_cache_hits = 1"), std::string::npos) << stats;
  server.Stop();
}

TEST(QueryServer, SessionLimitRefusesLoudly) {
  QueryServerOptions options;
  options.max_sessions = 1;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  TestClient first(server.port());
  first.Send("SHOW TABLES");  // Ensure the first session is established.

  auto second = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(second.ok());
  auto refusal = (*second)->RecvFrame();
  ASSERT_TRUE(refusal.ok()) << refusal.status();
  EXPECT_NE(refusal->find("error: ResourceExhausted"), std::string::npos)
      << *refusal;
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace isla
