// Unit tests for core/noniid.h — non-i.i.d. aggregation (§VII-C, §VIII-D).

#include <gtest/gtest.h>

#include <vector>

#include "core/noniid.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults(double e = 0.5) {
  IslaOptions o;
  o.precision = e;
  return o;
}

workload::Dataset PaperBlocks(uint64_t rows_per_block = 1'000'000,
                              uint64_t seed = 1) {
  // §VIII-D: N(100,20²), N(50,10²), N(80,30²), N(150,60²), N(120,40²).
  std::vector<workload::NonIidBlockSpec> specs = {
      {100.0, 20.0, rows_per_block}, {50.0, 10.0, rows_per_block},
      {80.0, 30.0, rows_per_block},  {150.0, 60.0, rows_per_block},
      {120.0, 40.0, rows_per_block}};
  auto ds = workload::MakeNonIidDataset(specs, seed);
  EXPECT_TRUE(ds.ok());
  return *ds;
}

TEST(NonIid, PaperExperimentWithinPrecision) {
  auto ds = PaperBlocks();
  EXPECT_DOUBLE_EQ(ds.true_mean, 100.0);
  auto r = AggregateAvgNonIid(*ds.data(), Defaults(0.5));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->average, 100.0, 0.5);
}

TEST(NonIid, HighVarianceBlocksGetMoreSamples) {
  auto ds = PaperBlocks();
  auto r = AggregateAvgNonIid(*ds.data(), Defaults(0.5));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->blocks.size(), 5u);
  // Block 3 is N(150, 60²) (σ=60) and block 1 is N(50, 10²) (σ=10):
  // blev ∝ 1 + σ² ⇒ the σ=60 block must be sampled far more.
  EXPECT_GT(r->blocks[3].samples_drawn, 10 * r->blocks[1].samples_drawn);
}

TEST(NonIid, UnequalBlockSizesWeightedCorrectly) {
  std::vector<workload::NonIidBlockSpec> specs = {{10.0, 1.0, 3'000'000},
                                                  {20.0, 1.0, 1'000'000}};
  auto ds = workload::MakeNonIidDataset(specs, 2);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->true_mean, 12.5);
  auto r = AggregateAvgNonIid(*ds->data(), Defaults(0.2));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->average, 12.5, 0.2);
}

TEST(NonIid, NegativeBlocksHandledPerBlockShift) {
  std::vector<workload::NonIidBlockSpec> specs = {{-100.0, 5.0, 1'000'000},
                                                  {100.0, 5.0, 1'000'000}};
  auto ds = workload::MakeNonIidDataset(specs, 3);
  ASSERT_TRUE(ds.ok());
  auto r = AggregateAvgNonIid(*ds->data(), Defaults(0.3));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->average, 0.0, 0.3);
}

TEST(NonIid, SingleBlockDegeneratesToIid) {
  std::vector<workload::NonIidBlockSpec> specs = {{100.0, 20.0, 4'000'000}};
  auto ds = workload::MakeNonIidDataset(specs, 4);
  ASSERT_TRUE(ds.ok());
  auto r = AggregateAvgNonIid(*ds->data(), Defaults(0.5));
  ASSERT_TRUE(r.ok());
  // 2e band: the contract is probabilistic.
  EXPECT_NEAR(r->average, 100.0, 1.0);
}

TEST(NonIid, EmptyColumnFails) {
  storage::Column empty("v");
  EXPECT_TRUE(AggregateAvgNonIid(empty, Defaults())
                  .status()
                  .IsFailedPrecondition());
}

TEST(NonIid, DeterministicForFixedSeed) {
  auto ds = PaperBlocks();
  auto a = AggregateAvgNonIid(*ds.data(), Defaults(0.5), /*seed_salt=*/9);
  auto b = AggregateAvgNonIid(*ds.data(), Defaults(0.5), /*seed_salt=*/9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->average, b->average);
}

}  // namespace
}  // namespace core
}  // namespace isla
