// Unit + property tests for stats/normal.h: CDF/quantile accuracy and
// round-trip identities.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normal.h"

namespace isla {
namespace stats {
namespace {

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-16);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(2.0), 0.9772498680518208, 1e-12);
  EXPECT_NEAR(NormalCdf(-2.0), 1.0 - NormalCdf(2.0), 1e-12);
}

TEST(NormalCdf, TailsSaturate) {
  EXPECT_NEAR(NormalCdf(10.0), 1.0, 1e-15);
  EXPECT_LT(NormalCdf(-10.0), 1e-20);
}

TEST(NormalQuantile, MedianIsZero) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-14);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.95), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.9), 1.2815515655446004, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.99), 2.3263478740408408, 1e-9);
}

TEST(NormalQuantile, Symmetry) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-10);
  }
}

TEST(NormalQuantile, EdgesAndInvalid) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_GT(NormalQuantile(1.0), 0.0);
  EXPECT_TRUE(std::isnan(NormalQuantile(-0.1)));
  EXPECT_TRUE(std::isnan(NormalQuantile(1.1)));
  EXPECT_TRUE(std::isnan(NormalQuantile(std::nan(""))));
}

TEST(TwoSidedZ, PaperValue) {
  // β = 0.95 → u ≈ 1.96 (the u of Eq. 1).
  EXPECT_NEAR(TwoSidedZ(0.95), 1.959963984540054, 1e-9);
  EXPECT_NEAR(TwoSidedZ(0.99), 2.5758293035489004, 1e-8);
  EXPECT_NEAR(TwoSidedZ(0.8), 1.2815515655446004, 1e-9);
}

TEST(TwoSidedZ, MonotoneInConfidence) {
  double prev = 0.0;
  for (double beta : {0.5, 0.8, 0.9, 0.95, 0.98, 0.99, 0.999}) {
    double z = TwoSidedZ(beta);
    EXPECT_GT(z, prev);
    prev = z;
  }
}

/// Property sweep: Φ(Φ⁻¹(p)) == p across the full domain, including deep
/// tails where Acklam's branches switch.
class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  double p = GetParam();
  double x = NormalQuantile(p);
  EXPECT_NEAR(NormalCdf(x), p, 1e-12 + 1e-9 * p);
}

INSTANTIATE_TEST_SUITE_P(
    FullDomain, QuantileRoundTrip,
    ::testing::Values(1e-12, 1e-9, 1e-6, 1e-4, 0.01, 0.02425, 0.025, 0.1,
                      0.25, 0.5, 0.75, 0.9, 0.975, 0.99, 0.9999, 1.0 - 1e-6,
                      1.0 - 1e-9));

/// Property sweep: quantile is strictly monotone.
class QuantileMonotone
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuantileMonotone, StrictlyIncreasing) {
  auto [p1, p2] = GetParam();
  EXPECT_LT(NormalQuantile(p1), NormalQuantile(p2));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, QuantileMonotone,
    ::testing::Values(std::pair{1e-6, 1e-3}, std::pair{0.1, 0.2},
                      std::pair{0.49, 0.51}, std::pair{0.9, 0.95},
                      std::pair{0.999, 0.9999}));

}  // namespace
}  // namespace stats
}  // namespace isla
