// Unit + property tests for core/objective.h: Theorem 3's closed form must
// agree with the brute-force leverage pipeline for arbitrary inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/leverage.h"
#include "core/objective.h"
#include "stats/moments.h"
#include "util/rng.h"

namespace isla {
namespace core {
namespace {

stats::StreamingMoments MomentsOf(const std::vector<double>& values) {
  stats::StreamingMoments m;
  for (double v : values) m.Add(v);
  return m;
}

TEST(ComputeObjective, PaperExampleOneCoefficients) {
  // Example 1: S = {4, 5}, L = {8}, q = 1. c = 17/3, and µ̂(0.1) ≈ 5.6649.
  auto obj = ComputeObjective(MomentsOf({4.0, 5.0}), MomentsOf({8.0}), 1.0);
  ASSERT_TRUE(obj.ok());
  EXPECT_NEAR(obj->c, 17.0 / 3.0, 1e-12);
  EXPECT_NEAR(obj->MuHat(0.1), 5.6649, 5e-4);
}

TEST(ComputeObjective, CIsUniformAnswerOverSAndL) {
  auto obj = ComputeObjective(MomentsOf({80.0, 85.0}),
                              MomentsOf({115.0, 120.0}), 1.0);
  ASSERT_TRUE(obj.ok());
  EXPECT_NEAR(obj->c, (80.0 + 85.0 + 115.0 + 120.0) / 4.0, 1e-12);
}

TEST(ComputeObjective, DRelation) {
  auto obj = ComputeObjective(MomentsOf({4.0, 5.0}), MomentsOf({8.0}), 1.0);
  ASSERT_TRUE(obj.ok());
  EXPECT_NEAR(obj->D(0.0, 6.2), obj->c - 6.2, 1e-12);
  EXPECT_NEAR(obj->D(0.3, 6.2), obj->k * 0.3 + obj->c - 6.2, 1e-12);
}

TEST(ComputeObjective, RejectsEmptyRegions) {
  stats::StreamingMoments empty;
  EXPECT_TRUE(ComputeObjective(empty, MomentsOf({8.0}), 1.0)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(ComputeObjective(MomentsOf({4.0}), empty, 1.0)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ComputeObjective, RejectsBadQ) {
  EXPECT_TRUE(ComputeObjective(MomentsOf({4.0}), MomentsOf({8.0}), 0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(ComputeObjective, RejectsDegenerateZeroData) {
  EXPECT_TRUE(ComputeObjective(MomentsOf({0.0, 0.0}), MomentsOf({0.0}), 1.0)
                  .status()
                  .IsFailedPrecondition());
}

/// The central property (Theorem 3): the streamed closed form k·α + c must
/// equal the brute-force pipeline (raw leverages → normalization →
/// probabilities → Σ prob·a) for random sample sets, all q tiers, and a
/// sweep of α — including the negative α of Case 4.
class Theorem3Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem3Property, ClosedFormMatchesBruteForce) {
  Xoshiro256 rng(GetParam());
  // Random S region (values below 90) and L region (values above 110).
  size_t u = 2 + rng.NextBounded(60);
  size_t v = 1 + rng.NextBounded(60);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < u; ++i) xs.push_back(60.0 + 30.0 * rng.NextDouble());
  for (size_t j = 0; j < v; ++j) ys.push_back(110.0 + 30.0 * rng.NextDouble());

  for (double q : {0.1, 0.2, 1.0, 5.0, 10.0}) {
    auto obj = ComputeObjective(MomentsOf(xs), MomentsOf(ys), q);
    ASSERT_TRUE(obj.ok());
    for (double alpha : {-0.9, -0.3, 0.0, 0.05, 0.2, 0.5, 0.95}) {
      auto brute = BruteForceLEstimator(xs, ys, q, alpha);
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(obj->MuHat(alpha), brute.value(),
                  1e-9 * std::abs(brute.value()) + 1e-9)
          << "q=" << q << " alpha=" << alpha << " u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSampleSets, Theorem3Property,
                         ::testing::Range<uint64_t>(1, 21));

/// Property: k and c are insensitive to the sampling order (§V-A) — the
/// moments commute, so any permutation of the stream yields identical
/// coefficients.
TEST(ComputeObjective, OrderInsensitive) {
  std::vector<double> xs = {70.0, 75.0, 80.0, 85.0, 88.0};
  std::vector<double> ys = {112.0, 118.0, 125.0};
  auto forward = ComputeObjective(MomentsOf(xs), MomentsOf(ys), 5.0);
  std::reverse(xs.begin(), xs.end());
  std::reverse(ys.begin(), ys.end());
  auto backward = ComputeObjective(MomentsOf(xs), MomentsOf(ys), 5.0);
  ASSERT_TRUE(forward.ok() && backward.ok());
  EXPECT_NEAR(forward->k, backward->k, 1e-12);
  EXPECT_NEAR(forward->c, backward->c, 1e-12);
}

TEST(ComputeObjective, QShiftsMassBetweenRegions) {
  // Larger q gives S more leverage mass, pulling the pure-leverage answer
  // (α = 1) down; smaller q pulls it up toward L.
  auto lo = ComputeObjective(MomentsOf({80.0, 82.0}),
                             MomentsOf({118.0, 120.0}), 0.2);
  auto hi = ComputeObjective(MomentsOf({80.0, 82.0}),
                             MomentsOf({118.0, 120.0}), 5.0);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GT(lo->MuHat(1.0), hi->MuHat(1.0));
}

}  // namespace
}  // namespace core
}  // namespace isla
