// Unit tests for core/online.h — the online-aggregation extension (§VII-A).

#include <gtest/gtest.h>

#include "core/online.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults(double e = 0.5) {
  IslaOptions o;
  o.precision = e;
  return o;
}

TEST(OnlineAggregator, StartProducesAnswer) {
  auto ds = workload::MakeNormalDataset(10'000'000, 5, 100.0, 20.0, 1);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  auto r = agg.Start();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->average, 100.0, 0.5);
  EXPECT_GT(agg.total_samples(), 0u);
}

TEST(OnlineAggregator, StartTwiceFails) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults());
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(agg.Start().status().IsFailedPrecondition());
}

TEST(OnlineAggregator, RefineBeforeStartFails) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 3);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults());
  EXPECT_TRUE(agg.Refine(0.1).status().IsFailedPrecondition());
  EXPECT_TRUE(agg.CurrentAnswer().status().IsFailedPrecondition());
}

TEST(OnlineAggregator, RefineDrawsOnlyTheDelta) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 4);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  uint64_t round1 = agg.total_samples();
  auto r = agg.Refine(0.25);
  ASSERT_TRUE(r.ok());
  uint64_t round2 = agg.total_samples();
  // Eq. (1): halving e quadruples m, so the delta ≈ 3× round 1.
  EXPECT_GT(round2, round1 * 3);
  EXPECT_LT(round2, round1 * 5);
  EXPECT_NEAR(r->average, 100.0, 0.5);  // 2e band.
}

TEST(OnlineAggregator, RefineMustTightenPrecision) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 5);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(agg.Refine(0.5).status().IsInvalidArgument());
  EXPECT_TRUE(agg.Refine(0.8).status().IsInvalidArgument());
  EXPECT_TRUE(agg.Refine(-0.1).status().IsInvalidArgument());
}

TEST(OnlineAggregator, CurrentAnswerIsStableWithoutSampling) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 6);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  auto a = agg.CurrentAnswer();
  auto b = agg.CurrentAnswer();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->average, b->average);
}

TEST(OnlineAggregator, SuccessiveRefinementsTrackTruth) {
  auto ds = workload::MakeNormalDataset(100'000'000, 10, 100.0, 20.0, 7);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(1.0));
  ASSERT_TRUE(agg.Start().ok());
  double errors[3];
  double precisions[3] = {0.5, 0.25, 0.1};
  for (int i = 0; i < 3; ++i) {
    auto r = agg.Refine(precisions[i]);
    ASSERT_TRUE(r.ok());
    errors[i] = std::abs(r->average - 100.0);
    EXPECT_LE(errors[i], precisions[i] * 3.0) << "round " << i;
  }
  EXPECT_DOUBLE_EQ(agg.current_precision(), 0.1);
}

TEST(OnlineAggregator, EmptyColumnFailsAtStart) {
  storage::Column empty("v");
  OnlineAggregator agg(&empty, Defaults());
  EXPECT_TRUE(agg.Start().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace core
}  // namespace isla
