// Unit tests for core/online.h — the online-aggregation extension (§VII-A)
// — plus a statistical-coverage harness (the tests/coverage_test.cc style)
// for the Refine() contract: every monotone-precision round must keep its
// own (e, β) guarantee, not just the first one.

#include <gtest/gtest.h>

#include <cmath>

#include "core/online.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults(double e = 0.5) {
  IslaOptions o;
  o.precision = e;
  return o;
}

TEST(OnlineAggregator, StartProducesAnswer) {
  auto ds = workload::MakeNormalDataset(10'000'000, 5, 100.0, 20.0, 1);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  auto r = agg.Start();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->average, 100.0, 0.5);
  EXPECT_GT(agg.total_samples(), 0u);
}

TEST(OnlineAggregator, StartTwiceFails) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults());
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(agg.Start().status().IsFailedPrecondition());
}

TEST(OnlineAggregator, RefineBeforeStartFails) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 3);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults());
  EXPECT_TRUE(agg.Refine(0.1).status().IsFailedPrecondition());
  EXPECT_TRUE(agg.CurrentAnswer().status().IsFailedPrecondition());
}

TEST(OnlineAggregator, RefineDrawsOnlyTheDelta) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 4);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  uint64_t round1 = agg.total_samples();
  auto r = agg.Refine(0.25);
  ASSERT_TRUE(r.ok());
  uint64_t round2 = agg.total_samples();
  // Eq. (1): halving e quadruples m, so the delta ≈ 3× round 1.
  EXPECT_GT(round2, round1 * 3);
  EXPECT_LT(round2, round1 * 5);
  EXPECT_NEAR(r->average, 100.0, 0.5);  // 2e band.
}

TEST(OnlineAggregator, RefineMustTightenPrecision) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 5);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  EXPECT_TRUE(agg.Refine(0.5).status().IsInvalidArgument());
  EXPECT_TRUE(agg.Refine(0.8).status().IsInvalidArgument());
  EXPECT_TRUE(agg.Refine(-0.1).status().IsInvalidArgument());
}

TEST(OnlineAggregator, CurrentAnswerIsStableWithoutSampling) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 6);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(0.5));
  ASSERT_TRUE(agg.Start().ok());
  auto a = agg.CurrentAnswer();
  auto b = agg.CurrentAnswer();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->average, b->average);
}

TEST(OnlineAggregator, SuccessiveRefinementsTrackTruth) {
  auto ds = workload::MakeNormalDataset(100'000'000, 10, 100.0, 20.0, 7);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(1.0));
  ASSERT_TRUE(agg.Start().ok());
  double errors[3];
  double precisions[3] = {0.5, 0.25, 0.1};
  for (int i = 0; i < 3; ++i) {
    auto r = agg.Refine(precisions[i]);
    ASSERT_TRUE(r.ok());
    errors[i] = std::abs(r->average - 100.0);
    EXPECT_LE(errors[i], precisions[i] * 3.0) << "round " << i;
  }
  EXPECT_DOUBLE_EQ(agg.current_precision(), 0.1);
}

TEST(OnlineAggregator, EmptyColumnFailsAtStart) {
  storage::Column empty("v");
  OnlineAggregator agg(&empty, Defaults());
  EXPECT_TRUE(agg.Start().status().IsFailedPrecondition());
}

TEST(OnlineAggregator, RefineAnswerEqualsCurrentAnswerBitwise) {
  // Refine's return value and a subsequent CurrentAnswer() must be the
  // same solve over the same moments — bit-identical, no hidden sampling.
  auto ds = workload::MakeMaterializedNormalDataset(200'000, 4, 100.0, 20.0,
                                                    8);
  ASSERT_TRUE(ds.ok());
  OnlineAggregator agg(ds->data(), Defaults(1.0));
  ASSERT_TRUE(agg.Start().ok());
  auto refined = agg.Refine(0.5);
  ASSERT_TRUE(refined.ok());
  auto current = agg.CurrentAnswer();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(refined->average, current->average);
  EXPECT_EQ(refined->sketch0, current->sketch0);
  EXPECT_EQ(refined->total_samples, current->total_samples);
}

// ---------------------------------------------------------------------------
// Statistical coverage of the Refine contract (coverage_test.cc harness
// style): kRuns independently seeded aggregators each walk the monotone
// precision ladder 1.0 → 0.5 → 0.25; at every rung the error against the
// exact mean must sit inside the engine's empirical 2e band at least
// β − 3·σ_binomial of the time, and sample counts must be monotone.
//
// The refined answer's accuracy is bounded by the *sketch* estimator: on
// near-symmetric data the balanced case (§V-C Case 5) returns the sketch
// directly, and the sketch is only refined to the relaxed precision
// t_e·e. With the default t_e = 3 the refined rounds therefore carry a 3e
// contract, not 2e (empirically ~90–94% inside 3e — the band the seed's
// SuccessiveRefinementsTrackTruth test pins per run). Online refinement
// that must honour the engine's usual 2e band needs t_e ≤ 2, so the
// harness codifies the contract at t_e = 1.5, where the sketch CI sits
// strictly inside the grading band (measured coverage ≈ 0.98–1.0).
// ---------------------------------------------------------------------------

TEST(OnlineCoverage, RefineKeepsTheContractEveryRound) {
  constexpr int kRuns = 120;
  constexpr double kBeta = 0.95;
  const double floor =
      kBeta - 3.0 * std::sqrt(kBeta * (1.0 - kBeta) / kRuns);

  auto ds = workload::MakeMaterializedNormalDataset(200'000, 4, 100.0, 20.0,
                                                    42);
  ASSERT_TRUE(ds.ok());
  const double exact = ds->true_mean;

  const double ladder[] = {1.0, 0.5, 0.25};
  int covered[3] = {0, 0, 0};
  for (int i = 0; i < kRuns; ++i) {
    IslaOptions options;
    options.precision = ladder[0];
    options.confidence = kBeta;
    options.sketch_relaxation = 1.5;  // See the harness comment above.
    options.seed = 0xc0de + static_cast<uint64_t>(i);
    OnlineAggregator agg(ds->data(), options);

    auto r = agg.Start();
    ASSERT_TRUE(r.ok()) << r.status();
    if (std::abs(r->average - exact) <= 2.0 * ladder[0]) ++covered[0];
    uint64_t samples_before = agg.total_samples();

    for (int round = 1; round < 3; ++round) {
      r = agg.Refine(ladder[round]);
      ASSERT_TRUE(r.ok()) << r.status();
      if (std::abs(r->average - exact) <= 2.0 * ladder[round]) {
        ++covered[round];
      }
      // Monotone: refinement adds samples, never discards work.
      EXPECT_GT(agg.total_samples(), samples_before) << "run " << i;
      samples_before = agg.total_samples();
      EXPECT_DOUBLE_EQ(agg.current_precision(), ladder[round]);
    }
  }
  for (int round = 0; round < 3; ++round) {
    double coverage = static_cast<double>(covered[round]) / kRuns;
    EXPECT_GE(coverage, floor)
        << "round " << round << " (e=" << ladder[round] << "): "
        << covered[round] << "/" << kRuns << " inside the 2e band";
  }
}

}  // namespace
}  // namespace core
}  // namespace isla
