// Unit tests for core/options.h validation.

#include <gtest/gtest.h>

#include "core/options.h"

namespace isla {
namespace core {
namespace {

TEST(IslaOptions, DefaultsAreValid) {
  EXPECT_TRUE(IslaOptions{}.Validate().ok());
}

TEST(IslaOptions, PaperParameterTableIsValid) {
  IslaOptions o;
  o.precision = 0.1;
  o.confidence = 0.95;
  o.p1 = 0.5;
  o.p2 = 2.0;
  o.step_length_factor = 0.8;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(IslaOptions, RejectsBadPrecision) {
  IslaOptions o;
  o.precision = 0.0;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
  o.precision = -0.5;
  EXPECT_TRUE(o.Validate().IsInvalidArgument());
}

TEST(IslaOptions, RejectsBadConfidence) {
  IslaOptions o;
  for (double beta : {0.0, 1.0, -0.5, 1.5}) {
    o.confidence = beta;
    EXPECT_FALSE(o.Validate().ok()) << beta;
  }
}

TEST(IslaOptions, RejectsRelaxationNotAboveOne) {
  IslaOptions o;
  o.sketch_relaxation = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o.sketch_relaxation = 0.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, RejectsBadBoundaries) {
  IslaOptions o;
  o.p1 = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.p1 = 2.5;  // > p2 = 2.0
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, RejectsBadStepFactorAndRate) {
  IslaOptions o;
  o.step_length_factor = 1.0;
  EXPECT_FALSE(o.Validate().ok());
  o = IslaOptions{};
  o.convergence_rate = 0.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, RejectsInvertedDevTiers) {
  IslaOptions o;
  o.dev_mild_lo = 0.93;  // Below severe_lo = 0.94.
  EXPECT_FALSE(o.Validate().ok());
  o = IslaOptions{};
  o.dev_severe_hi = 1.02;  // Below mild_hi = 1.03.
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, RejectsBadQPrimes) {
  IslaOptions o;
  o.q_prime_mild = 0.5;
  EXPECT_FALSE(o.Validate().ok());
  o = IslaOptions{};
  o.q_prime_severe = 2.0;  // Below mild = 5.
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, RejectsBadPilotAndScale) {
  IslaOptions o;
  o.sigma_pilot_size = 1;
  EXPECT_FALSE(o.Validate().ok());
  o = IslaOptions{};
  o.sampling_rate_scale = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.sampling_rate_scale = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IslaOptions, EffectiveThresholdDerivesFromPrecision) {
  IslaOptions o;
  o.precision = 0.5;
  o.threshold = 0.0;
  o.threshold_fraction = 0.01;
  EXPECT_DOUBLE_EQ(o.EffectiveThreshold(), 0.005);
  o.threshold = 0.002;
  EXPECT_DOUBLE_EQ(o.EffectiveThreshold(), 0.002);
}

}  // namespace
}  // namespace core
}  // namespace isla
