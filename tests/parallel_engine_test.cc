// Tests for the parallel Calculation phase: bit-identical answers across
// parallelism settings and repeated runs, and the SUM-shaped AggregateSum.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "storage/table.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults(double e, uint32_t parallelism) {
  IslaOptions o;
  o.precision = e;
  o.parallelism = parallelism;
  return o;
}

/// Every field that feeds the answer must match bit-for-bit.
void ExpectIdentical(const AggregateResult& a, const AggregateResult& b) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.average, b.average);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.sketch0, b.sketch0);
  EXPECT_EQ(a.sigma_estimate, b.sigma_estimate);
  EXPECT_EQ(a.shift, b.shift);
  EXPECT_EQ(a.total_samples, b.total_samples);
  EXPECT_EQ(a.pilot_samples, b.pilot_samples);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (size_t j = 0; j < a.blocks.size(); ++j) {
    EXPECT_EQ(a.blocks[j].samples_drawn, b.blocks[j].samples_drawn);
    EXPECT_EQ(a.blocks[j].answer.avg, b.blocks[j].answer.avg);
    EXPECT_EQ(a.blocks[j].answer.alpha, b.blocks[j].answer.alpha);
    EXPECT_EQ(a.blocks[j].answer.s_count, b.blocks[j].answer.s_count);
    EXPECT_EQ(a.blocks[j].answer.l_count, b.blocks[j].answer.l_count);
  }
}

TEST(ParallelEngine, BitIdenticalAcrossParallelism) {
  auto ds = workload::MakeNormalDataset(10'000'000, 16, 100.0, 20.0, 21);
  ASSERT_TRUE(ds.ok());
  auto r1 = IslaEngine(Defaults(0.2, 1)).AggregateAvg(*ds->data());
  auto r2 = IslaEngine(Defaults(0.2, 2)).AggregateAvg(*ds->data());
  auto r8 = IslaEngine(Defaults(0.2, 8)).AggregateAvg(*ds->data());
  ASSERT_TRUE(r1.ok() && r2.ok() && r8.ok());
  ExpectIdentical(*r1, *r2);
  ExpectIdentical(*r1, *r8);
}

TEST(ParallelEngine, BitIdenticalAcrossRepeatedRuns) {
  auto ds = workload::MakeNormalDataset(5'000'000, 8, 100.0, 20.0, 22);
  ASSERT_TRUE(ds.ok());
  IslaEngine engine(Defaults(0.2, 8));
  auto a = engine.AggregateAvg(*ds->data());
  auto b = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectIdentical(*a, *b);
}

TEST(ParallelEngine, AutoParallelismMatchesExplicitOne) {
  auto ds = workload::MakeNormalDataset(5'000'000, 8, 100.0, 20.0, 23);
  ASSERT_TRUE(ds.ok());
  auto seq = IslaEngine(Defaults(0.2, 1)).AggregateAvg(*ds->data());
  auto autop = IslaEngine(Defaults(0.2, 0)).AggregateAvg(*ds->data());
  ASSERT_TRUE(seq.ok() && autop.ok());
  ExpectIdentical(*seq, *autop);
}

TEST(ParallelEngine, SeedSaltStillDecorrelatesUnderParallelism) {
  auto ds = workload::MakeNormalDataset(5'000'000, 8, 100.0, 20.0, 24);
  ASSERT_TRUE(ds.ok());
  IslaEngine engine(Defaults(0.2, 4));
  auto a = engine.AggregateAvg(*ds->data(), /*seed_salt=*/0);
  auto b = engine.AggregateAvg(*ds->data(), /*seed_salt=*/1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->average, b->average);
}

TEST(AggregateSum, ReturnsSumShapedResult) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  IslaEngine engine(Defaults(0.5, 2));
  auto r = engine.AggregateSum(*ds->data());
  ASSERT_TRUE(r.ok());
  // Regression: AggregateSum used to be a bare alias of AggregateAvg, so
  // callers reading the primary answer silently got the AVG.
  EXPECT_DOUBLE_EQ(r->value, r->sum);
  EXPECT_DOUBLE_EQ(r->sum, r->average * 1e6);
  EXPECT_NEAR(r->value, 1e8, 0.5 * 1e6);
}

TEST(AggregateSum, AvgValueIsAverage) {
  auto ds = workload::MakeNormalDataset(1'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  IslaEngine engine(Defaults(0.5, 1));
  auto r = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value, r->average);
}

TEST(AggregateSum, ExecutorSumQueryMatchesEngine) {
  auto ds = workload::MakeNormalDataset(1'000'000, 4, 100.0, 20.0, 31);
  ASSERT_TRUE(ds.ok());
  storage::Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(ds->table).ok());
  engine::QueryExecutor executor(&catalog, IslaOptions{});
  std::string sql = "SELECT SUM(" + ds->column + ") FROM " +
                    ds->table->name() + " WITHIN 0.5";
  auto qr = executor.Execute(sql);
  ASSERT_TRUE(qr.ok()) << qr.status();
  ASSERT_TRUE(qr->isla_details.has_value());
  EXPECT_DOUBLE_EQ(qr->value, qr->isla_details->sum);
  EXPECT_DOUBLE_EQ(qr->value, qr->isla_details->value);
  EXPECT_NEAR(qr->value, 1e8, 0.5 * 1e6);
}

}  // namespace
}  // namespace core
}  // namespace isla
