// Unit tests for core/pre_estimation.h — the Pre-estimation module (§III).

#include <gtest/gtest.h>

#include "core/pre_estimation.h"
#include "stats/confidence.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

IslaOptions Defaults() {
  IslaOptions o;
  o.precision = 0.1;
  return o;
}

workload::Dataset Normal(uint64_t rows = 10'000'000, uint64_t blocks = 10,
                         double mu = 100.0, double sigma = 20.0,
                         uint64_t seed = 42) {
  auto ds = workload::MakeNormalDataset(rows, blocks, mu, sigma, seed);
  EXPECT_TRUE(ds.ok());
  return *ds;
}

TEST(PreEstimation, EstimatesSigmaAndSketch) {
  auto ds = Normal();
  Xoshiro256 rng(1);
  auto pilot = RunPreEstimation(*ds.data(), Defaults(), &rng);
  ASSERT_TRUE(pilot.ok()) << pilot.status();
  EXPECT_NEAR(pilot->sigma, 20.0, 2.0);       // σ pilot of 1000 → ±~5%.
  EXPECT_NEAR(pilot->sketch0, 100.0, 1.0);    // relaxed-precision estimate.
  EXPECT_EQ(pilot->sigma_pilot_samples, 1000u);
  EXPECT_GT(pilot->sketch_pilot_samples, 1000u);
}

TEST(PreEstimation, SampleSizeFollowsEquationOne) {
  auto ds = Normal();
  IslaOptions o = Defaults();
  Xoshiro256 rng(2);
  auto pilot = RunPreEstimation(*ds.data(), o, &rng);
  ASSERT_TRUE(pilot.ok());
  auto expected =
      stats::RequiredSampleSize(pilot->sigma, o.precision, o.confidence);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(pilot->target_sample_size, expected.value());
  EXPECT_NEAR(pilot->sampling_rate,
              static_cast<double>(expected.value()) / 1e7, 1e-12);
}

TEST(PreEstimation, SamplingRateScaleShrinksTarget) {
  auto ds = Normal();
  IslaOptions o = Defaults();
  Xoshiro256 rng1(3), rng2(3);
  auto full = RunPreEstimation(*ds.data(), o, &rng1);
  o.sampling_rate_scale = 1.0 / 3.0;
  auto third = RunPreEstimation(*ds.data(), o, &rng2);
  ASSERT_TRUE(full.ok() && third.ok());
  EXPECT_NEAR(static_cast<double>(third->target_sample_size),
              static_cast<double>(full->target_sample_size) / 3.0, 2.0);
}

TEST(PreEstimation, TracksMinimumForNegativeShift) {
  auto ds = Normal(1'000'000, 4, -50.0, 5.0, 7);
  Xoshiro256 rng(4);
  auto pilot = RunPreEstimation(*ds.data(), Defaults(), &rng);
  ASSERT_TRUE(pilot.ok());
  EXPECT_LT(pilot->min_value, -50.0);  // Pilot saw the negative bulk.
}

TEST(PreEstimation, ConstantDataHasZeroSigma) {
  auto table = std::make_shared<storage::Table>("t");
  ASSERT_TRUE(table->AddColumn("v").ok());
  ASSERT_TRUE(
      table->AppendBlock(
               "v", std::make_shared<storage::MemoryBlock>(
                        std::vector<double>(5000, 3.5)))
          .ok());
  workload::Dataset ds;
  ds.table = table;
  ds.column = "v";
  Xoshiro256 rng(5);
  auto pilot = RunPreEstimation(*ds.data(), Defaults(), &rng);
  ASSERT_TRUE(pilot.ok());
  EXPECT_DOUBLE_EQ(pilot->sigma, 0.0);
  EXPECT_DOUBLE_EQ(pilot->sketch0, 3.5);
  EXPECT_LE(pilot->target_sample_size, 2u);
}

TEST(PreEstimation, EmptyColumnFails) {
  storage::Column empty("v");
  Xoshiro256 rng(6);
  EXPECT_TRUE(RunPreEstimation(empty, Defaults(), &rng)
                  .status()
                  .IsFailedPrecondition());
}

TEST(PreEstimation, NullRngFails) {
  auto ds = Normal();
  EXPECT_TRUE(RunPreEstimation(*ds.data(), Defaults(), nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(PreEstimation, InvalidOptionsFail) {
  auto ds = Normal();
  IslaOptions bad = Defaults();
  bad.precision = -1.0;
  Xoshiro256 rng(7);
  EXPECT_FALSE(RunPreEstimation(*ds.data(), bad, &rng).ok());
}

TEST(PreEstimation, TinyPopulationClampsTarget) {
  auto ds = Normal(500, 2, 100.0, 20.0, 8);
  Xoshiro256 rng(8);
  auto pilot = RunPreEstimation(*ds.data(), Defaults(), &rng);
  ASSERT_TRUE(pilot.ok());
  EXPECT_LE(pilot->target_sample_size, 500u);
  EXPECT_LE(pilot->sampling_rate, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace isla
