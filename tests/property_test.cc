// Property-based sweeps over the whole engine: precision contracts across
// (distribution × precision × block count) grids, plus algebraic
// invariants that must hold for any input.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/engine.h"
#include "core/leverage.h"
#include "core/modulation.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace isla {
namespace {

/// Sweep: ISLA's answer stays within a small multiple of the requested
/// precision for normals of varying µ, σ, e, and block counts. The paper's
/// confidence contract is 95%, so the test multiplies the band by 3 to make
/// flakes essentially impossible while still catching systematic bias.
struct EngineParam {
  double mu;
  double sigma;
  double precision;
  uint64_t blocks;
  uint64_t seed;
};

class EnginePrecisionSweep : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EnginePrecisionSweep, AnswerWithinThreePrecisions) {
  auto p = GetParam();
  auto ds =
      workload::MakeNormalDataset(50'000'000, p.blocks, p.mu, p.sigma,
                                  p.seed);
  ASSERT_TRUE(ds.ok());
  core::IslaOptions options;
  options.precision = p.precision;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(*ds->data(), p.seed);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(r->average, p.mu, 3.0 * p.precision)
      << "mu=" << p.mu << " sigma=" << p.sigma << " e=" << p.precision
      << " b=" << p.blocks;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnginePrecisionSweep,
    ::testing::Values(EngineParam{100.0, 20.0, 0.1, 10, 1},
                      EngineParam{100.0, 20.0, 0.5, 10, 2},
                      EngineParam{100.0, 20.0, 0.1, 6, 3},
                      EngineParam{100.0, 20.0, 0.1, 24, 4},
                      EngineParam{100.0, 5.0, 0.1, 10, 5},
                      EngineParam{100.0, 60.0, 0.5, 10, 6},
                      EngineParam{1000.0, 20.0, 0.5, 10, 7},
                      EngineParam{5.0, 1.0, 0.05, 10, 8},
                      EngineParam{-200.0, 20.0, 0.5, 10, 9},
                      EngineParam{0.0, 10.0, 0.25, 10, 10},
                      EngineParam{100.0, 20.0, 0.2, 1, 11},
                      EngineParam{100.0, 20.0, 0.3, 17, 12}));

/// Invariant: probabilities generated from any leverage configuration sum
/// to 1 and the l-estimator stays inside [min, max] of the samples for
/// α ∈ [0, 1).
class LeverageInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeverageInvariants, ProbabilitiesFormADistribution) {
  Xoshiro256 rng(GetParam());
  size_t u = 2 + rng.NextBounded(40);
  size_t v = 2 + rng.NextBounded(40);
  std::vector<double> xs, ys;
  double lo = 1e300, hi = -1e300;
  for (size_t i = 0; i < u; ++i) {
    xs.push_back(50.0 + 40.0 * rng.NextDouble());
    lo = std::min(lo, xs.back());
    hi = std::max(hi, xs.back());
  }
  for (size_t j = 0; j < v; ++j) {
    ys.push_back(110.0 + 40.0 * rng.NextDouble());
    lo = std::min(lo, ys.back());
    hi = std::max(hi, ys.back());
  }
  for (double q : {0.1, 1.0, 10.0}) {
    for (double alpha : {0.0, 0.3, 0.7, 0.99}) {
      auto probs = core::ComputeProbabilities(xs, ys, q, alpha);
      ASSERT_TRUE(probs.ok());
      double total = std::accumulate(probs->begin(), probs->end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-10);
      auto mu_hat = core::BruteForceLEstimator(xs, ys, q, alpha);
      ASSERT_TRUE(mu_hat.ok());
      if (alpha < 0.99) {
        // A convex-ish combination stays within the sample hull as long as
        // probabilities are non-negative; α close to 1 with extreme q can
        // push individual probabilities negative, so only check α ≤ 0.7.
        bool all_nonneg = true;
        for (double p : *probs) all_nonneg &= (p >= -1e-12);
        if (all_nonneg) {
          EXPECT_GE(mu_hat.value(), lo - 1e-9);
          EXPECT_LE(mu_hat.value(), hi + 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, LeverageInvariants,
                         ::testing::Range<uint64_t>(100, 115));

/// Invariant: RunModulation's residual |D| never exceeds the threshold and
/// iteration counts never exceed the paper's bound, across a grid of
/// objective geometries.
struct ModParam {
  double k;
  double c_offset;   // c − sketch0
  uint64_t s_count;
  uint64_t l_count;
};

class ModulationInvariants : public ::testing::TestWithParam<ModParam> {};

TEST_P(ModulationInvariants, ResidualAndBound) {
  auto p = GetParam();
  core::ObjectiveCoefficients obj{p.k, 100.0 + p.c_offset};
  core::IslaOptions options;
  options.precision = 0.1;
  auto res = core::RunModulation(obj, 100.0, p.s_count, p.l_count, options);
  ASSERT_TRUE(res.ok());
  if (res->strategy == core::ModulationCase::kCase5 ||
      res->strategy == core::ModulationCase::kDegenerate) {
    return;  // No iteration performed.
  }
  double thr = options.EffectiveThreshold();
  EXPECT_LE(std::abs(res->final_d), thr * (1.0 + 1e-9));
  double bound = std::ceil(std::log2(std::abs(p.c_offset) / thr)) + 8;
  EXPECT_LE(static_cast<double>(res->iterations), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ModulationInvariants,
    ::testing::Values(ModParam{-2.0, 0.4, 100, 200},
                      ModParam{2.0, 0.4, 200, 100},
                      ModParam{-2.0, -0.4, 100, 200},
                      ModParam{2.0, -0.4, 200, 100},
                      ModParam{-0.01, 0.7, 90, 110},
                      ModParam{0.01, -0.7, 110, 90},
                      ModParam{-50.0, 0.05, 80, 120},
                      ModParam{50.0, -0.05, 120, 80}));

/// Invariant: ISLA's SUM equals AVG × M exactly, for any dataset.
class SumConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SumConsistency, SumIsAvgTimesM) {
  auto ds =
      workload::MakeNormalDataset(1'000'000, 4, 100.0, 20.0, GetParam());
  ASSERT_TRUE(ds.ok());
  core::IslaOptions options;
  options.precision = 0.5;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->sum, r->average * 1e6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SumConsistency,
                         ::testing::Range<uint64_t>(40, 45));

/// Failure injection: blocks that return NaN values (simulated media
/// corruption past CRC) must not poison the whole aggregation silently —
/// the per-block moments go NaN and so does that block's answer, surfacing
/// the corruption in the diagnostics rather than a crash.
TEST(FailureInjection, NanValuesSurfaceInAnswerNotCrash) {
  class NanBlock : public storage::Block {
   public:
    uint64_t size() const override { return 1000; }
    double ValueAt(uint64_t) const override {
      return std::numeric_limits<double>::quiet_NaN();
    }
    std::string DebugString() const override { return "nan[1000]"; }
  };
  storage::Column col("v");
  ASSERT_TRUE(col.AppendBlock(std::make_shared<NanBlock>()).ok());
  core::IslaOptions options;
  options.precision = 0.5;
  core::IslaEngine engine(options);
  auto r = engine.AggregateAvg(col);
  // Either a clean error or a NaN answer is acceptable; silent plausible
  // numbers are not.
  if (r.ok()) {
    EXPECT_TRUE(std::isnan(r->average) || std::isnan(r->sigma_estimate));
  }
}

}  // namespace
}  // namespace isla
