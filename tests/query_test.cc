// Unit tests for engine/query.h — the mini-SQL parser.

#include <gtest/gtest.h>

#include "engine/query.h"

namespace isla {
namespace engine {
namespace {

TEST(ParseQuery, MinimalAvg) {
  auto q = ParseQuery("SELECT AVG(price) FROM sales");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregate, AggregateKind::kAvg);
  EXPECT_EQ(q->column, "price");
  EXPECT_EQ(q->table, "sales");
  EXPECT_DOUBLE_EQ(q->precision, 0.1);
  EXPECT_DOUBLE_EQ(q->confidence, 0.95);
  EXPECT_EQ(q->method, Method::kIsla);
}

TEST(ParseQuery, SumAggregate) {
  auto q = ParseQuery("SELECT SUM(qty) FROM inventory");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggregate, AggregateKind::kSum);
}

TEST(ParseQuery, FullClauseSet) {
  auto q = ParseQuery(
      "SELECT AVG(v) FROM t WITHIN 0.25 CONFIDENCE 0.99 USING uniform");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->precision, 0.25);
  EXPECT_DOUBLE_EQ(q->confidence, 0.99);
  EXPECT_EQ(q->method, Method::kUniform);
}

TEST(ParseQuery, ClausesInAnyOrder) {
  auto q = ParseQuery(
      "SELECT AVG(v) FROM t USING mvb WITHIN 0.5 CONFIDENCE 0.9");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->method, Method::kMvb);
  EXPECT_DOUBLE_EQ(q->precision, 0.5);
}

TEST(ParseQuery, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery("select avg(V) from T within 0.2 confidence 0.8");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->column, "V");  // Identifiers keep their case.
  EXPECT_EQ(q->table, "T");
}

TEST(ParseQuery, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseQuery("SELECT AVG(v) FROM t;").ok());
}

TEST(ParseQuery, ExtraWhitespaceTolerated) {
  EXPECT_TRUE(ParseQuery("  SELECT   AVG( v )  FROM   t  ").ok());
}

TEST(ParseQuery, AllMethodNames) {
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING isla")->method,
            Method::kIsla);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING isla_noniid")->method,
            Method::kIslaNonIid);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING noniid")->method,
            Method::kIslaNonIid);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING us")->method,
            Method::kUniform);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING sts")->method,
            Method::kStratified);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING mv")->method, Method::kMv);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING exact")->method,
            Method::kExact);
}

TEST(ParseQuery, UnknownMethodFails) {
  auto q = ParseQuery("SELECT AVG(v) FROM t USING magic");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("magic"), std::string::npos);
}

TEST(ParseQuery, RejectsUnknownAggregate) {
  auto q = ParseQuery("SELECT MAX(v) FROM t");
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(ParseQuery, RejectsMissingParens) {
  EXPECT_FALSE(ParseQuery("SELECT AVG v FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v FROM t").ok());
}

TEST(ParseQuery, RejectsMissingFrom) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v)").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) t").ok());
}

TEST(ParseQuery, RejectsBadNumbers) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN abc").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 0.25abc").ok());
}

TEST(ParseQuery, RejectsOutOfRangeValues) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN 0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN -0.1").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 1.0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 0").ok());
}

TEST(ParseQuery, RejectsTrailingGarbage) {
  auto q = ParseQuery("SELECT AVG(v) FROM t EXTRA");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("EXTRA"), std::string::npos);
}

TEST(ParseQuery, ErrorsCarryOffsets) {
  auto q = ParseQuery("SELECT AVG(v) FROM t WITHIN zero");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

TEST(ParseQuery, EmptyInputFails) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("   ").ok());
}

TEST(ParseQuery, CountAggregate) {
  auto q = ParseQuery("SELECT COUNT(v) FROM t WHERE v >= 10");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregate, AggregateKind::kCount);
  ASSERT_TRUE(q->where.has_value());
  EXPECT_EQ(q->where->column, "v");
  EXPECT_EQ(q->where->op, core::PredicateOp::kGe);
  EXPECT_DOUBLE_EQ(q->where->literal, 10.0);
}

TEST(ParseQuery, WhereClauseAllOperators) {
  const struct {
    const char* op;
    core::PredicateOp want;
  } cases[] = {
      {"=", core::PredicateOp::kEq},   {"==", core::PredicateOp::kEq},
      {"!=", core::PredicateOp::kNe},  {"<>", core::PredicateOp::kNe},
      {"<", core::PredicateOp::kLt},   {"<=", core::PredicateOp::kLe},
      {">", core::PredicateOp::kGt},   {">=", core::PredicateOp::kGe},
  };
  for (const auto& c : cases) {
    std::string sql =
        std::string("SELECT AVG(v) FROM t WHERE k ") + c.op + " 3.5";
    auto q = ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status();
    EXPECT_EQ(q->where->op, c.want) << sql;
    EXPECT_DOUBLE_EQ(q->where->literal, 3.5);
  }
}

TEST(ParseQuery, OperatorsNeedNoWhitespace) {
  auto q = ParseQuery("SELECT AVG(v) FROM t WHERE k<=-2.5 GROUP BY g");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where->op, core::PredicateOp::kLe);
  EXPECT_DOUBLE_EQ(q->where->literal, -2.5);
  EXPECT_EQ(q->group_by, "g");
}

TEST(ParseQuery, GroupByClause) {
  auto q = ParseQuery(
      "SELECT AVG(fare) FROM trips WHERE borough = 3 GROUP BY hour "
      "WITHIN 0.25 CONFIDENCE 0.9");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->group_by, "hour");
  EXPECT_EQ(q->where->column, "borough");
  EXPECT_EQ(q->where->op, core::PredicateOp::kEq);
}

TEST(ParseQuery, ClausesInterleaveFreely) {
  auto q = ParseQuery(
      "SELECT SUM(v) FROM t WITHIN 0.5 GROUP BY g USING uniform WHERE "
      "k > 1 CONFIDENCE 0.8");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->group_by, "g");
  EXPECT_TRUE(q->where.has_value());
  EXPECT_EQ(q->method, Method::kUniform);
}

TEST(ParseQuery, SketchAggregates) {
  auto med = ParseQuery("SELECT MEDIAN(v) FROM t");
  ASSERT_TRUE(med.ok()) << med.status();
  EXPECT_EQ(med->aggregate, AggregateKind::kMedian);
  EXPECT_DOUBLE_EQ(med->quantile_q, 0.5);

  auto q = ParseQuery("SELECT QUANTILE(v, 0.99) FROM t");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregate, AggregateKind::kQuantile);
  EXPECT_DOUBLE_EQ(q->quantile_q, 0.99);

  auto h = ParseQuery("SELECT HISTOGRAM(v, 16) FROM t");
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->aggregate, AggregateKind::kHistogram);
  EXPECT_EQ(h->histogram_bins, 16u);
}

TEST(ParseQuery, TopKGroups) {
  auto q = ParseQuery("SELECT COUNT(v) FROM t GROUP BY g TOP 5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->group_by, "g");
  EXPECT_EQ(q->top_k, 5u);
  // No TOP → keep all groups.
  EXPECT_EQ(ParseQuery("SELECT COUNT(v) FROM t GROUP BY g")->top_k, 0u);
}

TEST(ParseQuery, SketchAggregateBoundsEnforced) {
  // q outside [0, 1].
  EXPECT_FALSE(ParseQuery("SELECT QUANTILE(v, 1.5) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT QUANTILE(v, -0.1) FROM t").ok());
  // Quantile endpoints are legal.
  EXPECT_TRUE(ParseQuery("SELECT QUANTILE(v, 0) FROM t").ok());
  EXPECT_TRUE(ParseQuery("SELECT QUANTILE(v, 1) FROM t").ok());
  // Histogram bins: whole number in [1, 1024].
  EXPECT_FALSE(ParseQuery("SELECT HISTOGRAM(v, 0) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT HISTOGRAM(v, 1025) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT HISTOGRAM(v, 2.5) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT HISTOGRAM(v) FROM t").ok());
  // TOP: whole positive number only.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(v) FROM t GROUP BY g TOP 0").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(v) FROM t GROUP BY g TOP 2.5").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(v) FROM t GROUP BY g TOP").ok());
  // TOP requires GROUP BY (it binds to the GROUP BY clause).
  EXPECT_FALSE(ParseQuery("SELECT COUNT(v) FROM t TOP 3").ok());
}

TEST(ParseQuery, PrintParseRoundTripIsAFixedPoint) {
  // Property: Print(Parse(q)) == Print(Parse(Print(Parse(q)))) for every
  // accepted query — printing is a canonicalization, so one round settles
  // it.
  const char* corpus[] = {
      "SELECT AVG(price) FROM sales",
      "select sum(QTY) from Inventory within 0.25",
      "SELECT COUNT(v) FROM t",
      "SELECT AVG(v) FROM t WHERE k >= 3 GROUP BY g",
      "SELECT AVG(v) FROM t WHERE k<>-17.25 USING noniid",
      "SELECT AVG(v) FROM t GROUP BY g WITHIN 0.125 CONFIDENCE 0.975",
      "SELECT SUM(v) FROM t WHERE k = 1e-3 USING exact;",
      "SELECT AVG(v) FROM t WITHIN 0.1 CONFIDENCE 0.95 USING mvb",
      "SELECT COUNT(x) FROM t WHERE x < 0.333333333333333314829616256247;",
      "  SELECT   AVG( v )  FROM   t  USING   sts  ",
      "SELECT MEDIAN(v) FROM t",
      "select quantile(v, 0.9) from t group by g top 5",
      "SELECT QUANTILE(v, 0.25) FROM t WHERE k > 2 WITHIN 0.05",
      "SELECT HISTOGRAM(v, 16) FROM t WHERE k <= 0.5",
      "SELECT HISTOGRAM(v, 1) FROM t GROUP BY g",
      "SELECT COUNT(v) FROM t GROUP BY g TOP 1 CONFIDENCE 0.99",
      "SELECT MEDIAN(lat) FROM trips GROUP BY city TOP 3 USING noniid",
  };
  for (const char* sql : corpus) {
    auto first = ParseQuery(sql);
    ASSERT_TRUE(first.ok()) << sql << ": " << first.status();
    std::string printed = PrintQuery(*first);
    auto second = ParseQuery(printed);
    ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
    EXPECT_EQ(printed, PrintQuery(*second)) << sql;
    // The canonical form preserves the parse, field by field.
    EXPECT_EQ(first->aggregate, second->aggregate) << sql;
    EXPECT_EQ(first->column, second->column) << sql;
    EXPECT_EQ(first->table, second->table) << sql;
    EXPECT_EQ(first->where.has_value(), second->where.has_value()) << sql;
    if (first->where.has_value()) {
      EXPECT_EQ(first->where->op, second->where->op) << sql;
      EXPECT_EQ(first->where->literal, second->where->literal) << sql;
    }
    EXPECT_EQ(first->group_by, second->group_by) << sql;
    EXPECT_EQ(first->precision, second->precision) << sql;
    EXPECT_EQ(first->confidence, second->confidence) << sql;
    EXPECT_EQ(first->method, second->method) << sql;
    EXPECT_EQ(first->top_k, second->top_k) << sql;
    EXPECT_EQ(first->quantile_q, second->quantile_q) << sql;
    EXPECT_EQ(first->histogram_bins, second->histogram_bins) << sql;
  }
}

TEST(ParseQuery, MalformedCorpusFailsCleanlyWithOffsets) {
  // Every entry must produce a position-annotated InvalidArgument — never a
  // crash, never an accept.
  const char* corpus[] = {
      // Unterminated literals.
      "SELECT AVG(v) FROM t WHERE name = 'unterminated",
      "SELECT AVG(v) FROM t WHERE name = \"also bad",
      "SELECT AVG(v) FROM 'oops",
      // String literals where numbers/identifiers belong.
      "SELECT AVG(v) FROM t WHERE name = 'str'",
      "SELECT AVG('v') FROM t",
      "SELECT AVG(v) FROM t WITHIN '0.5'",
      // Duplicate clauses.
      "SELECT AVG(v) FROM t WHERE k > 1 WHERE k < 2",
      "SELECT AVG(v) FROM t GROUP BY g GROUP BY h",
      "SELECT AVG(v) FROM t WITHIN 0.5 WITHIN 0.25",
      "SELECT AVG(v) FROM t CONFIDENCE 0.9 CONFIDENCE 0.95",
      "SELECT AVG(v) FROM t USING isla USING uniform",
      // Bad operators.
      "SELECT AVG(v) FROM t WHERE k => 3",
      "SELECT AVG(v) FROM t WHERE k !! 3",
      "SELECT AVG(v) FROM t WHERE k 3",
      "SELECT AVG(v) FROM t WHERE k >",
      "SELECT AVG(v) FROM t WHERE > 3",
      // Structural damage.
      "SELECT AVG(v) FROM t GROUP g",
      "SELECT AVG(v) FROM t GROUP BY",
      "SELECT AVG(v) FROM t WHERE",
      "SELECT AVG() FROM t",
      "SELECT (v) FROM t",
      "WHERE k > 3",
      "SELECT AVG(v) FROM t WITHIN 0.5 garbage",
      // Sketch-aggregate argument damage.
      "SELECT QUANTILE(v) FROM t",
      "SELECT QUANTILE(v, 1.5) FROM t",
      "SELECT QUANTILE(v, 'half') FROM t",
      "SELECT MEDIAN(v, 0.5) FROM t",
      "SELECT HISTOGRAM(v) FROM t",
      "SELECT HISTOGRAM(v, 0) FROM t",
      "SELECT HISTOGRAM(v, 2.5) FROM t",
      // TOP damage.
      "SELECT COUNT(v) FROM t GROUP BY g TOP 0",
      "SELECT COUNT(v) FROM t GROUP BY g TOP",
      "SELECT COUNT(v) FROM t GROUP BY g TOP k",
      "SELECT COUNT(v) FROM t TOP 3",
  };
  for (const char* sql : corpus) {
    auto q = ParseQuery(sql);
    ASSERT_FALSE(q.ok()) << "accepted: " << sql;
    EXPECT_TRUE(q.status().IsInvalidArgument()) << sql << ": " << q.status();
    EXPECT_NE(q.status().message().find("offset"), std::string::npos)
        << sql << ": " << q.status();
  }
}

TEST(PrintQuery, LiteralsRoundTripExactly) {
  QuerySpec spec;
  spec.column = "v";
  spec.table = "t";
  PredicateClause where;
  where.column = "k";
  where.op = core::PredicateOp::kLt;
  where.literal = 0.1 + 0.2;  // 0.30000000000000004 — needs 17 digits
  spec.where = where;
  spec.precision = 1.0 / 3.0;
  auto reparsed = ParseQuery(PrintQuery(spec));
  ASSERT_TRUE(reparsed.ok()) << PrintQuery(spec);
  EXPECT_EQ(reparsed->where->literal, 0.1 + 0.2);
  EXPECT_EQ(reparsed->precision, 1.0 / 3.0);
}

TEST(MethodName, RoundTripNames) {
  EXPECT_EQ(MethodName(Method::kIsla), "isla");
  EXPECT_EQ(MethodName(Method::kIslaNonIid), "isla_noniid");
  EXPECT_EQ(MethodName(Method::kUniform), "uniform");
  EXPECT_EQ(MethodName(Method::kStratified), "stratified");
  EXPECT_EQ(MethodName(Method::kMv), "mv");
  EXPECT_EQ(MethodName(Method::kMvb), "mvb");
  EXPECT_EQ(MethodName(Method::kExact), "exact");
}

}  // namespace
}  // namespace engine
}  // namespace isla
