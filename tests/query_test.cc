// Unit tests for engine/query.h — the mini-SQL parser.

#include <gtest/gtest.h>

#include "engine/query.h"

namespace isla {
namespace engine {
namespace {

TEST(ParseQuery, MinimalAvg) {
  auto q = ParseQuery("SELECT AVG(price) FROM sales");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->aggregate, AggregateKind::kAvg);
  EXPECT_EQ(q->column, "price");
  EXPECT_EQ(q->table, "sales");
  EXPECT_DOUBLE_EQ(q->precision, 0.1);
  EXPECT_DOUBLE_EQ(q->confidence, 0.95);
  EXPECT_EQ(q->method, Method::kIsla);
}

TEST(ParseQuery, SumAggregate) {
  auto q = ParseQuery("SELECT SUM(qty) FROM inventory");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggregate, AggregateKind::kSum);
}

TEST(ParseQuery, FullClauseSet) {
  auto q = ParseQuery(
      "SELECT AVG(v) FROM t WITHIN 0.25 CONFIDENCE 0.99 USING uniform");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->precision, 0.25);
  EXPECT_DOUBLE_EQ(q->confidence, 0.99);
  EXPECT_EQ(q->method, Method::kUniform);
}

TEST(ParseQuery, ClausesInAnyOrder) {
  auto q = ParseQuery(
      "SELECT AVG(v) FROM t USING mvb WITHIN 0.5 CONFIDENCE 0.9");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->method, Method::kMvb);
  EXPECT_DOUBLE_EQ(q->precision, 0.5);
}

TEST(ParseQuery, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery("select avg(V) from T within 0.2 confidence 0.8");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->column, "V");  // Identifiers keep their case.
  EXPECT_EQ(q->table, "T");
}

TEST(ParseQuery, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseQuery("SELECT AVG(v) FROM t;").ok());
}

TEST(ParseQuery, ExtraWhitespaceTolerated) {
  EXPECT_TRUE(ParseQuery("  SELECT   AVG( v )  FROM   t  ").ok());
}

TEST(ParseQuery, AllMethodNames) {
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING isla")->method,
            Method::kIsla);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING isla_noniid")->method,
            Method::kIslaNonIid);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING noniid")->method,
            Method::kIslaNonIid);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING us")->method,
            Method::kUniform);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING sts")->method,
            Method::kStratified);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING mv")->method, Method::kMv);
  EXPECT_EQ(ParseQuery("SELECT AVG(v) FROM t USING exact")->method,
            Method::kExact);
}

TEST(ParseQuery, UnknownMethodFails) {
  auto q = ParseQuery("SELECT AVG(v) FROM t USING magic");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("magic"), std::string::npos);
}

TEST(ParseQuery, RejectsUnknownAggregate) {
  auto q = ParseQuery("SELECT MAX(v) FROM t");
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(ParseQuery, RejectsMissingParens) {
  EXPECT_FALSE(ParseQuery("SELECT AVG v FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v FROM t").ok());
}

TEST(ParseQuery, RejectsMissingFrom) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v)").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) t").ok());
}

TEST(ParseQuery, RejectsBadNumbers) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN abc").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 0.25abc").ok());
}

TEST(ParseQuery, RejectsOutOfRangeValues) {
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN 0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t WITHIN -0.1").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 1.0").ok());
  EXPECT_FALSE(ParseQuery("SELECT AVG(v) FROM t CONFIDENCE 0").ok());
}

TEST(ParseQuery, RejectsTrailingGarbage) {
  auto q = ParseQuery("SELECT AVG(v) FROM t EXTRA");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("EXTRA"), std::string::npos);
}

TEST(ParseQuery, ErrorsCarryOffsets) {
  auto q = ParseQuery("SELECT AVG(v) FROM t WITHIN zero");
  EXPECT_TRUE(q.status().IsInvalidArgument());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

TEST(ParseQuery, EmptyInputFails) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("   ").ok());
}

TEST(MethodName, RoundTripNames) {
  EXPECT_EQ(MethodName(Method::kIsla), "isla");
  EXPECT_EQ(MethodName(Method::kIslaNonIid), "isla_noniid");
  EXPECT_EQ(MethodName(Method::kUniform), "uniform");
  EXPECT_EQ(MethodName(Method::kStratified), "stratified");
  EXPECT_EQ(MethodName(Method::kMv), "mv");
  EXPECT_EQ(MethodName(Method::kMvb), "mvb");
  EXPECT_EQ(MethodName(Method::kExact), "exact");
}

}  // namespace
}  // namespace engine
}  // namespace isla
