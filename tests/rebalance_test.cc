// Elastic-rebalancing suite: the machinery that lets a shard scale from
// one replica to N on a live cluster without changing a single answer
// bit.
//
//   - Machine-portable data fingerprints: every Block kind computing the
//     same identity for the same rows, which is what lets a streamed copy
//     register as a replica of its donor.
//   - Worker-to-worker shard streaming (FetchShard): CRC-guarded chunks,
//     all-or-nothing files, a died stream leaving the joiner clean and
//     retryable.
//   - Fingerprint-verified registration: the registry refusing a replica
//     whose data diverges from the shard's canonical fingerprint — even
//     after every honest replica has died.
//   - Lease-guarded placement: epoch-stamped cluster snapshots, the epoch
//     bumping exactly on live-membership changes.
//   - Least-outstanding replica balancing that is provably inert when
//     idle, so every existing differential pin still holds.
//   - The end-to-end chaos bar: a replica joins *while queries run*, and
//     a 34-query differential sweep over the post-join cluster is
//     bit-identical to healthy loopback.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/group_by.h"
#include "core/options.h"
#include "distributed/coordinator.h"
#include "distributed/failover.h"
#include "distributed/message.h"
#include "distributed/worker.h"
#include "net/faulty_connection.h"
#include "net/shard_streamer.h"
#include "net/tcp_transport.h"
#include "net/worker_registry.h"
#include "net/worker_server.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "storage/file_block.h"
#include "util/rng.h"

namespace isla {
namespace distributed {
namespace {

class RebalanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("isla_reb_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string Dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

std::vector<double> SeededRows(uint64_t seed, uint64_t n) {
  Xoshiro256 rng(seed);
  std::vector<double> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rows.push_back(rng.NextDouble() * 100.0);
  return rows;
}

std::unique_ptr<Worker> SeededWorker(uint64_t id, uint64_t seed,
                                     uint64_t rows) {
  return std::make_unique<Worker>(
      id, std::make_shared<storage::MemoryBlock>(SeededRows(seed, rows)));
}

net::WorkerServerOptions RegisteringOptions(uint16_t registry_port) {
  net::WorkerServerOptions options;
  options.coordinator_host = "127.0.0.1";
  options.coordinator_port = registry_port;
  options.heartbeat_millis = 100;
  return options;
}

// --- Data fingerprints ----------------------------------------------------

TEST_F(RebalanceTest, DataFingerprintIsDataDerivedAcrossBlockKinds) {
  // The same rows must fingerprint identically no matter which Block kind
  // holds them — that equality is what lets a streamed FileBlock copy
  // register as a replica of a MemoryBlock (or generator) donor.
  std::vector<double> rows = SeededRows(41, 4'000);
  auto memory = std::make_shared<storage::MemoryBlock>(rows);
  ASSERT_TRUE(storage::WriteBlockFile(Path("fp.islb"), rows).ok());
  auto file = storage::FileBlock::Open(Path("fp.islb"));
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(memory->DataFingerprint(), (*file)->DataFingerprint());
  EXPECT_NE(memory->DataFingerprint(), 0u);

  // Different data must diverge (one flipped row is enough).
  rows[123] += 1.0;
  storage::MemoryBlock other(std::move(rows));
  EXPECT_NE(other.DataFingerprint(), memory->DataFingerprint());
}

TEST_F(RebalanceTest, GeneratorBlockMatchesItsMaterializedCopy) {
  auto generator = std::make_shared<storage::GeneratorBlock>(
      std::make_shared<stats::NormalDistribution>(100.0, 20.0), 10'000,
      SplitMix64::Hash(7, 0));
  std::vector<double> materialized;
  ASSERT_TRUE(
      generator->ReadRange(0, generator->size(), &materialized).ok());
  ASSERT_TRUE(storage::WriteBlockFile(Path("g.islb"), materialized).ok());
  auto file = storage::FileBlock::Open(Path("g.islb"));
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(generator->DataFingerprint(), (*file)->DataFingerprint());
}

TEST_F(RebalanceTest, ShardFingerprintDivergesOnlyWithData) {
  auto a = SeededWorker(0, 1, 5'000);
  auto a_twin = SeededWorker(0, 1, 5'000);
  auto b = SeededWorker(0, 2, 5'000);
  EXPECT_EQ(a->ShardFingerprint(), a_twin->ShardFingerprint());
  EXPECT_NE(a->ShardFingerprint(), b->ShardFingerprint());
  EXPECT_NE(a->ShardFingerprint(), 0u);
}

// --- Least-outstanding replica balancing ---------------------------------

struct ChannelScript {
  uint64_t fail_first = 0;
  Status error = Status::IOError("scripted failure");
  int64_t delay_millis = 0;
};

class ScriptedTransport : public Transport {
 public:
  explicit ScriptedTransport(std::vector<ChannelScript> channels)
      : channels_(std::move(channels)) {
    for (size_t i = 0; i < channels_.size(); ++i) {
      calls_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    }
  }

  Result<std::string> Call(uint64_t channel,
                           const std::string& frame) override {
    (void)frame;
    if (channel >= channels_.size()) return Status::NotFound("no channel");
    const ChannelScript& script = channels_[channel];
    uint64_t call = calls_[channel]->fetch_add(1, std::memory_order_relaxed);
    if (script.delay_millis > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(script.delay_millis));
    }
    if (call < script.fail_first) return script.error;
    return std::string("ch") + std::to_string(channel);
  }

  size_t size() const override { return channels_.size(); }

  uint64_t calls(uint64_t channel) const {
    return calls_[channel]->load(std::memory_order_relaxed);
  }

 private:
  std::vector<ChannelScript> channels_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> calls_;
};

FailoverOptions FastOptions() {
  FailoverOptions options;
  options.backoff_base_millis = 1;
  options.backoff_max_millis = 5;
  options.enable_hedging = false;
  return options;
}

TEST(LeastOutstanding, IdleClusterKeepsStaticRotation) {
  // With nothing in flight the balancer must reproduce the old static
  // shard % n rotation exactly — that inertness is what keeps every
  // pre-existing differential and failover pin bit-identical.
  ScriptedTransport inner({{}, {}, {}, {}});
  FailoverTransport transport(&inner, {{0, 1}, {2, 3}}, FastOptions());
  auto r = transport.Call(1, "req");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "ch3");  // shard 1 starts at replica index 1 % 2.
  EXPECT_EQ(inner.calls(2), 0u);
  auto r0 = transport.Call(0, "req");
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(*r0, "ch0");
}

TEST(LeastOutstanding, BusyPreferredReplicaIsAvoided) {
  // Channel 0 is busy serving a slow call; a concurrent call for the same
  // shard must start on the idle replica instead of queueing behind it.
  ScriptedTransport inner({{0, Status::OK(), /*delay_millis=*/400}, {}});
  FailoverTransport transport(&inner, {{0, 1}}, FastOptions());
  std::thread slow([&] {
    auto r = transport.Call(0, "req");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "ch0");
  });
  // Let the slow call enter the channel before sampling load.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(transport.outstanding_on(0), 1u);
  auto fast = transport.Call(0, "req");
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, "ch1");
  slow.join();
  EXPECT_EQ(transport.outstanding_on(0), 0u);
  EXPECT_EQ(transport.outstanding_on(1), 0u);
}

// --- Shard streaming ------------------------------------------------------

TEST_F(RebalanceTest, FetchShardRoundTripsAllColumns) {
  const uint64_t kRows = 3'000;
  auto values = std::make_shared<storage::MemoryBlock>(SeededRows(1, kRows));
  auto preds = std::make_shared<storage::MemoryBlock>(SeededRows(2, kRows));
  auto keys = std::make_shared<storage::MemoryBlock>(SeededRows(3, kRows));
  auto donor_worker = std::make_unique<Worker>(5, values, preds, keys);
  const uint64_t donor_fingerprint = donor_worker->ShardFingerprint();
  net::WorkerServer donor(std::move(donor_worker));
  ASSERT_TRUE(donor.Start().ok());

  net::ShardStreamOptions stream_options;
  stream_options.chunk_rows = 512;  // Forces multi-chunk streams.
  auto streamed = net::FetchShard({"127.0.0.1", donor.port()}, 5, Dir(),
                                  stream_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->rows, kRows);
  EXPECT_GE(streamed->chunks, 3 * (kRows / 512));

  // The streamed files must open (whole-payload CRC verified) and carry
  // exactly the donor's rows.
  auto v = storage::FileBlock::Open(streamed->values_path);
  auto p = storage::FileBlock::Open(streamed->predicate_path);
  auto k = storage::FileBlock::Open(streamed->keys_path);
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_TRUE(k.ok()) << k.status();
  std::vector<double> got;
  ASSERT_TRUE((*v)->ReadRange(0, kRows, &got).ok());
  EXPECT_EQ(got, SeededRows(1, kRows));

  // And the joiner built from them is fingerprint-identical to the donor
  // — the registry will accept it as a legitimate replica.
  Worker joiner(5, *v, *p, *k);
  EXPECT_EQ(joiner.ShardFingerprint(), donor_fingerprint);
  donor.Stop();
}

TEST_F(RebalanceTest, FetchShardSkipsColumnsTheDonorLacks) {
  net::WorkerServer donor(SeededWorker(2, 9, 1'000));
  ASSERT_TRUE(donor.Start().ok());
  auto streamed = net::FetchShard({"127.0.0.1", donor.port()}, 2, Dir());
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_FALSE(streamed->values_path.empty());
  EXPECT_TRUE(streamed->predicate_path.empty());
  EXPECT_TRUE(streamed->keys_path.empty());
  donor.Stop();
}

TEST_F(RebalanceTest, FetchShardRefusesWrongShardId) {
  net::WorkerServer donor(SeededWorker(2, 9, 1'000));
  ASSERT_TRUE(donor.Start().ok());
  auto streamed = net::FetchShard({"127.0.0.1", donor.port()}, 3, Dir());
  EXPECT_FALSE(streamed.ok());
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
  donor.Stop();
}

TEST_F(RebalanceTest, DiedStreamLeavesJoinerCleanAndRetrySucceeds) {
  // The donor stalls after three response sends — the stream dies
  // mid-values-column with rows already on disk in the .part file. The
  // failed FetchShard must remove everything (the joiner is exactly as it
  // started, never half-provisioned), and a retry against a healthy donor
  // must succeed from scratch.
  const uint64_t kRows = 1'000;
  net::WorkerServerOptions faulty_options;
  faulty_options.fault = net::FaultMode::kStall;
  faulty_options.fault_after_sends = 3;
  net::WorkerServer faulty(SeededWorker(4, 77, kRows), faulty_options);
  ASSERT_TRUE(faulty.Start().ok());

  net::ShardStreamOptions stream_options;
  stream_options.chunk_rows = 256;  // 4 chunks; the 4th send stalls.
  stream_options.call_deadline_millis = 300;
  stream_options.reconnect_attempts = 0;
  stream_options.max_chunk_retries = 0;
  auto died = net::FetchShard({"127.0.0.1", faulty.port()}, 4, Dir(),
                              stream_options);
  ASSERT_FALSE(died.ok());
  EXPECT_TRUE(died.status().IsIOError()) << died.status();
  EXPECT_TRUE(std::filesystem::is_empty(dir_))
      << "a died stream must leave no files behind";
  faulty.Stop();

  net::WorkerServer healthy(SeededWorker(4, 77, kRows));
  ASSERT_TRUE(healthy.Start().ok());
  auto retried = net::FetchShard({"127.0.0.1", healthy.port()}, 4, Dir());
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried->rows, kRows);
  auto block = storage::FileBlock::Open(retried->values_path);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ((*block)->DataFingerprint(),
            storage::MemoryBlock(SeededRows(77, kRows)).DataFingerprint());
  healthy.Stop();
}

TEST_F(RebalanceTest, TransientMidStreamFaultsAreRiddenOutByChunkRetries) {
  // A bounded fault window (two dropped responses mid-stream, spanning
  // reconnects via the server-wide counter) must cost retries, never a
  // failed stream or a byte of divergence in the landed file.
  const uint64_t kRows = 2'000;
  net::WorkerServerOptions faulty_options;
  faulty_options.fault = net::FaultMode::kCloseInsteadOfSend;
  faulty_options.fault_after_sends = 2;
  faulty_options.fault_first_n = 2;
  net::WorkerServer donor(SeededWorker(6, 123, kRows), faulty_options);
  ASSERT_TRUE(donor.Start().ok());

  net::ShardStreamOptions stream_options;
  stream_options.chunk_rows = 256;
  stream_options.call_deadline_millis = 1'000;
  auto streamed = net::FetchShard({"127.0.0.1", donor.port()}, 6, Dir(),
                                  stream_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  auto block = storage::FileBlock::Open(streamed->values_path);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ((*block)->DataFingerprint(),
            storage::MemoryBlock(SeededRows(123, kRows)).DataFingerprint());
  donor.Stop();
}

// --- Fingerprint-verified registration -----------------------------------

TEST(Registration, DivergentReplicaIsRefusedHonestTwinAccepted) {
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  net::WorkerServer canonical(SeededWorker(0, 1, 5'000),
                              RegisteringOptions(registry.port()));
  ASSERT_TRUE(canonical.Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 1, 5'000));

  // An honest twin (same data) joins as a second replica.
  net::WorkerServer twin(SeededWorker(0, 1, 5'000),
                         RegisteringOptions(registry.port()));
  ASSERT_TRUE(twin.Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 2, 5'000));

  // A divergent worker claiming the same shard id with different data
  // must be refused — it would silently change answers.
  net::WorkerServer divergent(SeededWorker(0, 2, 5'000),
                              RegisteringOptions(registry.port()));
  ASSERT_TRUE(divergent.Start().ok());
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (divergent.register_refusals() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(divergent.register_refusals(), 0u);
  EXPECT_GT(registry.fingerprint_rejections(), 0u);
  auto placement = registry.Placement();
  ASSERT_EQ(placement.size(), 1u);
  EXPECT_EQ(placement[0].size(), 2u)
      << "the divergent replica must never appear in a placement";

  divergent.Stop();
  twin.Stop();
  canonical.Stop();
  registry.Stop();
}

TEST(Registration, CanonicalFingerprintOutlivesEveryHonestReplica) {
  // Sticky canonical identity: after the last honest replica dies, a
  // divergent claimant is still refused — unavailability is strictly
  // better than silently changed answers.
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  auto honest = std::make_unique<net::WorkerServer>(
      SeededWorker(0, 1, 5'000), RegisteringOptions(registry.port()));
  ASSERT_TRUE(honest->Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 1, 5'000));

  honest->Stop();
  honest.reset();
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!registry.Placement().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(registry.Placement().empty());

  net::WorkerServer divergent(SeededWorker(0, 2, 5'000),
                              RegisteringOptions(registry.port()));
  ASSERT_TRUE(divergent.Start().ok());
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (divergent.register_refusals() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(divergent.register_refusals(), 0u);
  EXPECT_TRUE(registry.Placement().empty());

  divergent.Stop();
  registry.Stop();
}

// --- Placement leases -----------------------------------------------------

TEST(PlacementLease, EpochBumpsOnJoinAndDeathNotOnHeartbeats) {
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());
  EXPECT_EQ(registry.epoch(), 0u);

  auto worker = std::make_unique<net::WorkerServer>(
      SeededWorker(0, 1, 5'000), RegisteringOptions(registry.port()));
  ASSERT_TRUE(worker->Start().ok());
  ASSERT_TRUE(registry.WaitForShards(1, 1, 5'000));
  const uint64_t after_join = registry.epoch();
  EXPECT_GT(after_join, 0u);

  // Heartbeats of an already-live replica are not membership changes.
  uint64_t acked = worker->heartbeats_acked();
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (worker->heartbeats_acked() < acked + 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(registry.epoch(), after_join);

  worker->Stop();
  worker.reset();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.epoch() == after_join &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GT(registry.epoch(), after_join);
  registry.Stop();
}

TEST(PlacementLease, SnapshotClusterIsEpochStampedAndRefusesHoles) {
  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());

  net::WorkerServer shard0(SeededWorker(0, 1, 5'000),
                           RegisteringOptions(registry.port()));
  net::WorkerServer shard1(SeededWorker(1, 2, 5'000),
                           RegisteringOptions(registry.port()));
  ASSERT_TRUE(shard0.Start().ok());
  ASSERT_TRUE(shard1.Start().ok());
  ASSERT_TRUE(registry.WaitForShards(2, 1, 5'000));

  auto snapshot = registry.SnapshotCluster(2);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(snapshot->epoch, registry.epoch());
  ASSERT_EQ(snapshot->placement.size(), 2u);
  ASSERT_EQ(snapshot->endpoints.size(), 2u);
  EXPECT_EQ(snapshot->placement[0].size(), 1u);
  EXPECT_EQ(snapshot->placement[1].size(), 1u);

  // A shard with no live replica makes the lease refuse, not limp.
  auto hole = registry.SnapshotCluster(3);
  ASSERT_FALSE(hole.ok());
  EXPECT_TRUE(hole.status().IsFailedPrecondition()) << hole.status();

  shard0.Stop();
  shard1.Stop();
  registry.Stop();
}

// --- End to end: join during queries, then a differential sweep ----------

/// The differential query mix: 17 shapes x 2 seeds = 34 queries covering
/// plain aggregates, every predicate operator, GROUP BY, and the
/// combinations.
struct QueryShape {
  bool has_predicate = false;
  core::PredicateOp op = core::PredicateOp::kGe;
  double literal = 0.0;
  bool has_group = false;
  double precision = 0.4;
};

std::vector<QueryShape> SweepShapes() {
  std::vector<QueryShape> shapes;
  shapes.push_back({false, core::PredicateOp::kGe, 0.0, false, 0.3});
  shapes.push_back({false, core::PredicateOp::kGe, 0.0, false, 0.5});
  shapes.push_back({false, core::PredicateOp::kGe, 0.0, true, 0.3});
  shapes.push_back({false, core::PredicateOp::kGe, 0.0, true, 0.5});
  for (core::PredicateOp op :
       {core::PredicateOp::kGe, core::PredicateOp::kGt,
        core::PredicateOp::kLe, core::PredicateOp::kLt}) {
    shapes.push_back({true, op, 0.1, false, 0.4});
    shapes.push_back({true, op, 0.7, false, 0.4});
  }
  shapes.push_back({true, core::PredicateOp::kGe, 0.3, true, 0.4});
  shapes.push_back({true, core::PredicateOp::kLt, 0.8, true, 0.4});
  shapes.push_back({true, core::PredicateOp::kGt, 0.55, true, 0.5});
  shapes.push_back({true, core::PredicateOp::kLe, 0.02, false, 0.5});
  shapes.push_back({true, core::PredicateOp::kGe, 0.98, true, 0.6});
  return shapes;
}

/// Row-aligned (value, predicate, key) shard triples for `n_shards`.
std::vector<std::array<std::vector<double>, 3>> SweepShards(
    uint64_t n_shards, uint64_t rows_per_shard) {
  std::vector<std::array<std::vector<double>, 3>> shards;
  Xoshiro256 rng(20260808);
  for (uint64_t s = 0; s < n_shards; ++s) {
    std::array<std::vector<double>, 3> cols;
    for (uint64_t i = 0; i < rows_per_shard; ++i) {
      double key = static_cast<double>(rng.NextBounded(4));
      cols[0].push_back(25.0 * (key + 1.0) + 3.0 * rng.NextDouble());
      cols[1].push_back(rng.NextDouble());
      cols[2].push_back(key);
    }
    shards.push_back(std::move(cols));
  }
  return shards;
}

std::unique_ptr<Worker> ShardWorker(
    uint64_t id, const std::array<std::vector<double>, 3>& cols) {
  return std::make_unique<Worker>(
      id, std::make_shared<storage::MemoryBlock>(cols[0]),
      std::make_shared<storage::MemoryBlock>(cols[1]),
      std::make_shared<storage::MemoryBlock>(cols[2]));
}

void ExpectGroupsBitIdentical(const core::GroupedAggregateResult& got,
                              const core::GroupedAggregateResult& want,
                              int query) {
  ASSERT_EQ(got.groups.size(), want.groups.size()) << "query " << query;
  EXPECT_EQ(got.data_size, want.data_size) << "query " << query;
  EXPECT_EQ(got.scanned_samples, want.scanned_samples) << "query " << query;
  EXPECT_EQ(got.pilot_samples, want.pilot_samples) << "query " << query;
  for (size_t g = 0; g < want.groups.size(); ++g) {
    const core::GroupResult& a = got.groups[g];
    const core::GroupResult& b = want.groups[g];
    EXPECT_EQ(a.key, b.key) << "query " << query << " group " << g;
    EXPECT_EQ(a.average, b.average) << "query " << query << " group " << g;
    EXPECT_EQ(a.sum, b.sum) << "query " << query << " group " << g;
    EXPECT_EQ(a.count_estimate, b.count_estimate)
        << "query " << query << " group " << g;
    EXPECT_EQ(a.ci_half_width, b.ci_half_width)
        << "query " << query << " group " << g;
    EXPECT_EQ(a.samples, b.samples) << "query " << query << " group " << g;
  }
}

TEST_F(RebalanceTest, ReplicaJoinsByStreamingWhileQueriesRunThenSweeps) {
  // The acceptance bar, end to end on a live TCP cluster: shard 0 scales
  // 1 -> 2 replicas via worker-to-worker streaming while queries run;
  // queries in flight during the join all succeed bit-identically; the
  // lease epoch moves; and a 34-query differential sweep over the
  // post-join cluster is bit-identical to healthy loopback.
  const uint64_t kRows = 10'000;
  auto shards = SweepShards(2, kRows);

  net::WorkerRegistry registry;
  ASSERT_TRUE(registry.Start().ok());
  net::WorkerServer donor0(ShardWorker(0, shards[0]),
                           RegisteringOptions(registry.port()));
  net::WorkerServer worker1(ShardWorker(1, shards[1]),
                            RegisteringOptions(registry.port()));
  ASSERT_TRUE(donor0.Start().ok());
  ASSERT_TRUE(worker1.Start().ok());
  ASSERT_TRUE(registry.WaitForShards(2, 1, 5'000));

  auto pre_join = registry.SnapshotCluster(2);
  ASSERT_TRUE(pre_join.ok()) << pre_join.status();

  // Reference answers come from loopback — the healthy-cluster baseline.
  core::IslaOptions options;
  options.precision = 0.4;
  auto loopback_answer = [&](const QueryShape& shape, uint64_t query_id,
                             uint64_t seed) {
    std::vector<std::unique_ptr<Worker>> workers;
    workers.push_back(ShardWorker(0, shards[0]));
    workers.push_back(ShardWorker(1, shards[1]));
    LoopbackTransport loopback(std::move(workers));
    core::IslaOptions query_options = options;
    query_options.precision = shape.precision;
    Coordinator coordinator(&loopback, query_options);
    GroupedQuerySpec wire;
    wire.has_predicate = shape.has_predicate;
    wire.op = shape.op;
    wire.literal = shape.literal;
    wire.has_group = shape.has_group;
    return coordinator.AggregateGrouped(wire, query_id, seed);
  };

  // Query loop: hammer the pre-join placement while the replica streams
  // in. Every answer must match loopback even with the join racing it.
  std::atomic<bool> stop_queries{false};
  std::atomic<int> queries_during_join{0};
  std::thread query_loop([&] {
    net::TcpTransportOptions transport_options;
    transport_options.reconnect_attempts = 1;
    net::TcpTransport inner(pre_join->endpoints, transport_options);
    FailoverOptions failover_options = FastOptions();
    failover_options.placement_epoch = pre_join->epoch;
    FailoverTransport transport(&inner, pre_join->placement,
                                failover_options);
    const QueryShape shape{false, core::PredicateOp::kGe, 0.0, true, 0.4};
    for (uint64_t q = 1; !stop_queries.load(std::memory_order_relaxed);
         ++q) {
      Coordinator coordinator(&transport, options);
      GroupedQuerySpec wire;
      wire.has_group = true;
      auto got = coordinator.AggregateGrouped(wire, q, /*seed=*/q);
      ASSERT_TRUE(got.ok()) << got.status();
      auto want = loopback_answer(shape, q, q);
      ASSERT_TRUE(want.ok()) << want.status();
      ExpectGroupsBitIdentical(*got, *want, static_cast<int>(q));
      queries_during_join.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // The join: stream shard 0 from its live replica, open the files, and
  // register — all while the query loop runs.
  const net::Endpoint donor_endpoint =
      pre_join->endpoints[pre_join->placement[0][0]];
  auto streamed = net::FetchShard(donor_endpoint, 0, Dir());
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  auto v = storage::FileBlock::Open(streamed->values_path);
  auto p = storage::FileBlock::Open(streamed->predicate_path);
  auto k = storage::FileBlock::Open(streamed->keys_path);
  ASSERT_TRUE(v.ok() && p.ok() && k.ok());
  net::WorkerServer joiner(std::make_unique<Worker>(0, *v, *p, *k),
                           RegisteringOptions(registry.port()));
  ASSERT_TRUE(joiner.Start().ok());
  ASSERT_TRUE(registry.WaitForShards(2, 1, 5'000));
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.Placement()[0].size() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(registry.Placement()[0].size(), 2u)
      << "the streamed joiner must register as a second replica";
  EXPECT_EQ(registry.fingerprint_rejections(), 0u);

  // Let at least a few queries overlap the joined state, then stop.
  int seen = queries_during_join.load(std::memory_order_relaxed);
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (queries_during_join.load(std::memory_order_relaxed) < seen + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop_queries.store(true, std::memory_order_relaxed);
  query_loop.join();
  EXPECT_GT(queries_during_join.load(std::memory_order_relaxed), 0);

  // The new lease sees the grown shard and a moved epoch.
  auto post_join = registry.SnapshotCluster(2);
  ASSERT_TRUE(post_join.ok()) << post_join.status();
  EXPECT_GT(post_join->epoch, pre_join->epoch);
  ASSERT_EQ(post_join->placement[0].size(), 2u);
  ASSERT_EQ(post_join->placement[1].size(), 1u);

  // 34-query differential sweep over the post-join cluster vs loopback.
  net::TcpTransportOptions transport_options;
  transport_options.reconnect_attempts = 1;
  net::TcpTransport inner(post_join->endpoints, transport_options);
  FailoverOptions failover_options = FastOptions();
  failover_options.placement_epoch = post_join->epoch;
  FailoverTransport transport(&inner, post_join->placement,
                              failover_options);
  std::vector<QueryShape> sweep = SweepShapes();
  ASSERT_EQ(sweep.size() * 2, 34u);
  int query = 0;
  for (const QueryShape& shape : sweep) {
    for (uint64_t seed = 1; seed <= 2; ++seed, ++query) {
      core::IslaOptions query_options;
      query_options.precision = shape.precision;
      Coordinator coordinator(&transport, query_options);
      GroupedQuerySpec wire;
      wire.has_predicate = shape.has_predicate;
      wire.op = shape.op;
      wire.literal = shape.literal;
      wire.has_group = shape.has_group;
      auto got =
          coordinator.AggregateGrouped(wire, /*query_id=*/1000 + query, seed);
      ASSERT_TRUE(got.ok()) << "query " << query << ": " << got.status();
      auto want = loopback_answer(shape, 1000 + query, seed);
      ASSERT_TRUE(want.ok()) << want.status();
      ExpectGroupsBitIdentical(*got, *want, query);
    }
  }
  EXPECT_EQ(query, 34);
  // The lease epoch rides on the transport's counters for the whole
  // sweep — probes can tell which membership answered.
  EXPECT_EQ(transport.failover_snapshot().placement_epoch,
            post_join->epoch);

  joiner.Stop();
  donor0.Stop();
  worker1.Stop();
  registry.Stop();
}

}  // namespace
}  // namespace distributed
}  // namespace isla
