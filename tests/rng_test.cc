// Unit tests for util/rng.h: determinism, range correctness and coarse
// uniformity of the PRNG stack.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"

namespace isla {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, HashIsPureFunction) {
  EXPECT_EQ(SplitMix64::Hash(42, 7), SplitMix64::Hash(42, 7));
  EXPECT_NE(SplitMix64::Hash(42, 7), SplitMix64::Hash(42, 8));
  EXPECT_NE(SplitMix64::Hash(42, 7), SplitMix64::Hash(43, 7));
}

TEST(SplitMix64, HashSpreadsConsecutiveCounters) {
  // Consecutive counters must not produce correlated high bits.
  std::set<uint64_t> high_bytes;
  for (uint64_t i = 0; i < 256; ++i) {
    high_bytes.insert(SplitMix64::Hash(9, i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 150u);  // ~256 distinct expected.
}

TEST(Xoshiro256, DeterministicFromSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanIsHalf) {
  Xoshiro256 rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256, NextBoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBoundedZeroReturnsZero) {
  Xoshiro256 rng(4);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Xoshiro256, NextBoundedIsUnbiasedAcrossSmallRange) {
  // Chi-square-ish check over 8 buckets.
  Xoshiro256 rng(5);
  std::vector<int> counts(8, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 5.0 * std::sqrt(n / 8.0));
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  Xoshiro256 rng(6);
  EXPECT_NE(rng(), rng());
}

TEST(Xoshiro256, SeedsFromSplitMixAvoidAllZeroState) {
  // Seed 0 must still produce a working generator.
  Xoshiro256 rng(0);
  uint64_t a = rng.Next();
  uint64_t b = rng.Next();
  EXPECT_FALSE(a == 0 && b == 0);
}

}  // namespace
}  // namespace isla
