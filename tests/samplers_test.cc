// Unit + property tests for sampling/samplers.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>
#include <vector>

#include "sampling/samplers.h"
#include "storage/block.h"

namespace isla {
namespace sampling {
namespace {

TEST(WithReplacement, CountAndRange) {
  Xoshiro256 rng(1);
  auto idx = SampleIndicesWithReplacement(100, 50, &rng);
  EXPECT_EQ(idx.size(), 50u);
  for (uint64_t i : idx) EXPECT_LT(i, 100u);
}

TEST(WithReplacement, EmptyPopulation) {
  Xoshiro256 rng(2);
  EXPECT_TRUE(SampleIndicesWithReplacement(0, 10, &rng).empty());
}

TEST(WithReplacement, CoarselyUniform) {
  Xoshiro256 rng(3);
  std::vector<int> counts(10, 0);
  auto idx = SampleIndicesWithReplacement(10, 100000, &rng);
  for (uint64_t i : idx) ++counts[i];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 5.0 * std::sqrt(10000.0));
  }
}

TEST(WithoutReplacement, DistinctAndInRange) {
  Xoshiro256 rng(4);
  auto idx = SampleIndicesWithoutReplacement(1000, 100, &rng);
  ASSERT_TRUE(idx.ok());
  std::set<uint64_t> unique(idx->begin(), idx->end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t i : *idx) EXPECT_LT(i, 1000u);
}

TEST(WithoutReplacement, FullPopulation) {
  Xoshiro256 rng(5);
  auto idx = SampleIndicesWithoutReplacement(50, 50, &rng);
  ASSERT_TRUE(idx.ok());
  std::set<uint64_t> unique(idx->begin(), idx->end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(WithoutReplacement, KGreaterThanNFails) {
  Xoshiro256 rng(6);
  EXPECT_FALSE(SampleIndicesWithoutReplacement(10, 11, &rng).ok());
}

namespace {

/// The pre-flat-set reference: Floyd's algorithm with std::unordered_set
/// membership, exactly as the original implementation wrote it. The
/// production flat probe table must emit the identical sequence for the
/// identical RNG stream.
std::vector<uint64_t> FloydReference(uint64_t n, uint64_t k,
                                     Xoshiro256* rng) {
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng->NextBounded(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace

TEST(WithoutReplacement, FlatSetMatchesUnorderedSetReference) {
  // Identical output *sequence* (not just set) across population sizes,
  // densities (k == n forces maximal collisions), and seeds.
  const struct {
    uint64_t n;
    uint64_t k;
  } cases[] = {{1, 1},     {10, 10},     {100, 99},    {1000, 17},
               {1000, 1000}, {1 << 20, 4096}, {54321, 1234}};
  for (const auto& c : cases) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Xoshiro256 rng_ref(seed);
      Xoshiro256 rng_new(seed);
      auto expected = FloydReference(c.n, c.k, &rng_ref);
      auto got = SampleIndicesWithoutReplacement(c.n, c.k, &rng_new);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, expected)
          << "n=" << c.n << " k=" << c.k << " seed=" << seed;
    }
  }
}

TEST(Bernoulli, ZeroAndOneProbabilities) {
  Xoshiro256 rng(7);
  int count = 0;
  ASSERT_TRUE(
      BernoulliSample(1000, 0.0, [&](uint64_t) { ++count; }, &rng).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(
      BernoulliSample(1000, 1.0, [&](uint64_t) { ++count; }, &rng).ok());
  EXPECT_EQ(count, 1000);
}

TEST(Bernoulli, ExpectedCount) {
  Xoshiro256 rng(8);
  int count = 0;
  ASSERT_TRUE(
      BernoulliSample(1000000, 0.01, [&](uint64_t) { ++count; }, &rng).ok());
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 500.0);
}

TEST(Bernoulli, IndicesStrictlyIncreasing) {
  Xoshiro256 rng(9);
  uint64_t prev = 0;
  bool first = true;
  ASSERT_TRUE(BernoulliSample(
                  100000, 0.05,
                  [&](uint64_t i) {
                    if (!first) {
                      EXPECT_GT(i, prev);
                    }
                    prev = i;
                    first = false;
                  },
                  &rng)
                  .ok());
}

TEST(Bernoulli, RejectsBadProbability) {
  Xoshiro256 rng(10);
  EXPECT_FALSE(BernoulliSample(10, -0.1, [](uint64_t) {}, &rng).ok());
  EXPECT_FALSE(BernoulliSample(10, 1.1, [](uint64_t) {}, &rng).ok());
}

TEST(Reservoir, KeepsAllWhenUnderCapacity) {
  ReservoirSampler r(10, 1);
  for (int i = 0; i < 5; ++i) r.Offer(static_cast<double>(i));
  EXPECT_EQ(r.reservoir().size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
}

TEST(Reservoir, CapsAtCapacity) {
  ReservoirSampler r(10, 2);
  for (int i = 0; i < 1000; ++i) r.Offer(static_cast<double>(i));
  EXPECT_EQ(r.reservoir().size(), 10u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(Reservoir, UniformInclusionProbability) {
  // Element 0's inclusion frequency across many runs ≈ k/n.
  int included = 0;
  const int runs = 2000;
  for (int run = 0; run < runs; ++run) {
    ReservoirSampler r(5, static_cast<uint64_t>(run));
    for (int i = 0; i < 50; ++i) r.Offer(i == 0 ? -1.0 : 1.0);
    for (double v : r.reservoir()) included += (v == -1.0);
  }
  EXPECT_NEAR(static_cast<double>(included) / runs, 0.1, 0.03);
}

TEST(Proportional, ExactTotalAndProportions) {
  auto alloc = ProportionalAllocation({100, 200, 700}, 100);
  EXPECT_EQ(alloc.size(), 3u);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 100u);
  EXPECT_EQ(alloc[0], 10u);
  EXPECT_EQ(alloc[1], 20u);
  EXPECT_EQ(alloc[2], 70u);
}

TEST(Proportional, LargestRemainderRounding) {
  // 3 equal strata, m = 10: shares 3.33 each → 4/3/3 in some order.
  auto alloc = ProportionalAllocation({1, 1, 1}, 10);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 10u);
  std::sort(alloc.begin(), alloc.end());
  EXPECT_EQ(alloc[0], 3u);
  EXPECT_EQ(alloc[2], 4u);
}

TEST(Proportional, ZeroBudgetOrEmpty) {
  EXPECT_EQ(ProportionalAllocation({10, 20}, 0),
            (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(ProportionalAllocation({0, 0}, 10),
            (std::vector<uint64_t>{0, 0}));
}

TEST(Neyman, WeightsBySigma) {
  // Equal sizes, σ = {1, 3}: allocation ≈ 1:3.
  auto alloc = NeymanAllocation({1000, 1000}, {1.0, 3.0}, 100);
  EXPECT_EQ(alloc[0] + alloc[1], 100u);
  EXPECT_NEAR(static_cast<double>(alloc[0]), 25.0, 1.0);
}

TEST(Neyman, FallsBackToProportionalWithZeroSigmas) {
  auto alloc = NeymanAllocation({100, 300}, {0.0, 0.0}, 40);
  EXPECT_EQ(alloc[0], 10u);
  EXPECT_EQ(alloc[1], 30u);
}

TEST(SampleBlockValues, VisitsExactlyK) {
  storage::MemoryBlock block({1.0, 2.0, 3.0});
  Xoshiro256 rng(11);
  int visits = 0;
  ASSERT_TRUE(
      SampleBlockValues(block, 1000, [&](double) { ++visits; }, &rng).ok());
  EXPECT_EQ(visits, 1000);
}

TEST(SampleBlockValues, EmptyBlockFails) {
  storage::MemoryBlock block(std::vector<double>{});
  Xoshiro256 rng(12);
  EXPECT_TRUE(SampleBlockValues(block, 1, [](double) {}, &rng)
                  .IsFailedPrecondition());
}

TEST(SampleBlockValues, NullRngFails) {
  storage::MemoryBlock block({1.0});
  EXPECT_TRUE(
      SampleBlockValues(block, 1, [](double) {}, nullptr).IsInvalidArgument());
}

TEST(DrawBlockSample, MeanConverges) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  storage::MemoryBlock block(std::move(values));
  Xoshiro256 rng(13);
  auto sample = DrawBlockSample(block, 100000, &rng);
  ASSERT_TRUE(sample.ok());
  double sum = 0.0;
  for (double v : *sample) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(sample->size()), 499.5, 10.0);
}

}  // namespace
}  // namespace sampling
}  // namespace isla
