// Unit coverage of engine::ScanScheduler: admission-window coalescing,
// pilot/result cache behavior, content-fingerprint keying (including the
// cross-table generator-block positive case), and the stats counters the
// query server surfaces through SHOW STATS. Bit-identity against the
// standalone engine is pinned at scale by differential_test; here the
// focus is the scheduler's own mechanics.

#include "engine/scan_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/group_by.h"
#include "core/options.h"
#include "stats/distribution.h"
#include "storage/block.h"
#include "storage/table.h"
#include "util/rng.h"

namespace isla {
namespace engine {
namespace {

core::IslaOptions TestOptions() {
  core::IslaOptions options;
  options.precision = 0.3;
  options.parallelism = 1;
  return options;
}

std::unique_ptr<storage::Column> MemoryColumn(uint64_t seed) {
  auto col = std::make_unique<storage::Column>("v");
  Xoshiro256 rng(seed);
  for (int b = 0; b < 3; ++b) {
    std::vector<double> vals(10'000);
    for (auto& v : vals) v = 50.0 + 25.0 * rng.NextDouble();
    EXPECT_TRUE(
        col->AppendBlock(
               std::make_shared<storage::MemoryBlock>(std::move(vals)))
            .ok());
  }
  return col;
}

/// A generator-backed column: content fingerprints derive from the
/// distribution parameters + seed, so two independently built columns with
/// the same recipe are provably byte-identical.
std::unique_ptr<storage::Column> GeneratorColumn(uint64_t seed) {
  auto col = std::make_unique<storage::Column>("v");
  auto dist = std::make_shared<stats::NormalDistribution>(100.0, 20.0);
  for (uint64_t j = 0; j < 3; ++j) {
    EXPECT_TRUE(col->AppendBlock(std::make_shared<storage::GeneratorBlock>(
                                     dist, 10'000,
                                     SplitMix64::Hash(seed, j)))
                    .ok());
  }
  return col;
}

void ExpectSameResult(const core::GroupedAggregateResult& a,
                      const core::GroupedAggregateResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  EXPECT_EQ(a.scanned_samples, b.scanned_samples);
  EXPECT_EQ(a.pilot_samples, b.pilot_samples);
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].average, b.groups[g].average);
    EXPECT_EQ(a.groups[g].sum, b.groups[g].sum);
    EXPECT_EQ(a.groups[g].ci_half_width, b.groups[g].ci_half_width);
    EXPECT_EQ(a.groups[g].samples, b.groups[g].samples);
  }
}

TEST(ScanSchedulerTest, SoloExecutionMatchesStandaloneEngine) {
  auto col = MemoryColumn(1);
  core::GroupedSpec spec;
  spec.values = col.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  sopts.enable_pilot_cache = false;
  sopts.enable_result_cache = false;
  ScanScheduler scheduler(sopts);
  auto got = scheduler.Execute(spec, TestOptions(), 0);
  ASSERT_TRUE(got.ok()) << got.status();

  core::GroupByEngine engine(TestOptions());
  auto want = engine.Aggregate(spec, 0);
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectSameResult(*got, *want);
}

TEST(ScanSchedulerTest, ConcurrentIdenticalQueriesCoalesceAndDedup) {
  auto col = MemoryColumn(2);
  core::GroupedSpec spec;
  spec.values = col.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 50'000;  // generous: threads must land in it
  sopts.enable_pilot_cache = false;
  sopts.enable_result_cache = false;
  ScanScheduler scheduler(sopts);

  constexpr int kThreads = 8;
  std::vector<Result<core::GroupedAggregateResult>> results(
      kThreads, Status::Internal("not run"));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = scheduler.Execute(spec, TestOptions(), 0);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].ok()) << results[t].status();
    ExpectSameResult(*results[t], *results[0]);
  }

  ScanSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads));
  // At least one batch must have coalesced >= 2 members, and identical
  // queries dedup into one execution, so the shared passes gathered far
  // fewer rows than eight standalone runs would have.
  EXPECT_GE(stats.shared_batches, 1u);
  EXPECT_GE(stats.batched_queries, 2u);
  EXPECT_LT(stats.rows_gathered, stats.rows_requested);
}

TEST(ScanSchedulerTest, ResultCacheHitsAndClearCaches) {
  auto col = MemoryColumn(3);
  core::GroupedSpec spec;
  spec.values = col.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  ScanScheduler scheduler(sopts);

  auto first = scheduler.Execute(spec, TestOptions(), 0);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = scheduler.Execute(spec, TestOptions(), 0);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectSameResult(*second, *first);
  EXPECT_EQ(scheduler.stats().result_cache_hits, 1u);

  scheduler.ClearCaches();
  auto third = scheduler.Execute(spec, TestOptions(), 0);
  ASSERT_TRUE(third.ok()) << third.status();
  ExpectSameResult(*third, *first);
  EXPECT_EQ(scheduler.stats().result_cache_hits, 1u);  // post-clear miss
}

TEST(ScanSchedulerTest, PilotCacheServesAcrossPrecisionChanges) {
  auto col = MemoryColumn(4);
  core::GroupedSpec spec;
  spec.values = col.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  sopts.enable_result_cache = false;  // isolate the pilot cache
  ScanScheduler scheduler(sopts);

  core::IslaOptions loose = TestOptions();
  auto first = scheduler.Execute(spec, loose, 0);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(scheduler.stats().pilot_cache_hits, 0u);

  // The pilot is independent of the precision target, so tightening the
  // precision reuses it — and the tightened answer still matches the
  // standalone engine bit for bit.
  core::IslaOptions tight = TestOptions();
  tight.precision = 0.15;
  auto second = scheduler.Execute(spec, tight, 0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(scheduler.stats().pilot_cache_hits, 1u);

  core::GroupByEngine engine(tight);
  auto want = engine.Aggregate(spec, 0);
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectSameResult(*second, *want);
}

TEST(ScanSchedulerTest, GeneratorColumnsShareCacheAcrossIncarnations) {
  // Two independently constructed generator columns with the same recipe
  // have equal content fingerprints — the second table's query is a result
  // cache hit even though no object is shared.
  auto col_a = GeneratorColumn(11);
  auto col_b = GeneratorColumn(11);
  core::GroupedSpec spec_a, spec_b;
  spec_a.values = col_a.get();
  spec_b.values = col_b.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  ScanScheduler scheduler(sopts);
  auto first = scheduler.Execute(spec_a, TestOptions(), 0);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = scheduler.Execute(spec_b, TestOptions(), 0);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectSameResult(*second, *first);
  EXPECT_EQ(scheduler.stats().result_cache_hits, 1u);

  // A different generator seed is different content: miss.
  auto col_c = GeneratorColumn(12);
  core::GroupedSpec spec_c;
  spec_c.values = col_c.get();
  auto third = scheduler.Execute(spec_c, TestOptions(), 0);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(scheduler.stats().result_cache_hits, 1u);
  EXPECT_EQ(scheduler.stats().result_cache_misses, 2u);
}

TEST(ScanSchedulerTest, DistinctSaltsAndSeedsNeverAlias) {
  auto col = GeneratorColumn(5);
  core::GroupedSpec spec;
  spec.values = col.get();

  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  ScanScheduler scheduler(sopts);
  auto base = scheduler.Execute(spec, TestOptions(), 0);
  ASSERT_TRUE(base.ok()) << base.status();

  auto salted = scheduler.Execute(spec, TestOptions(), 0x9b0471dULL);
  ASSERT_TRUE(salted.ok()) << salted.status();
  core::IslaOptions reseeded = TestOptions();
  reseeded.seed ^= 1;
  auto other_seed = scheduler.Execute(spec, reseeded, 0);
  ASSERT_TRUE(other_seed.ok()) << other_seed.status();

  // Three distinct cache keys: no hits, and the sampled answers differ
  // (different RNG streams).
  EXPECT_EQ(scheduler.stats().result_cache_hits, 0u);
  EXPECT_NE(salted->groups[0].average, base->groups[0].average);
  EXPECT_NE(other_seed->groups[0].average, base->groups[0].average);
}

TEST(ScanSchedulerTest, CacheCapacityEvictsLeastRecentlyUsed) {
  ScanSchedulerOptions sopts;
  sopts.admission_window_micros = 0;
  sopts.cache_capacity = 2;
  ScanScheduler scheduler(sopts);

  auto col_a = GeneratorColumn(21);
  auto col_b = GeneratorColumn(22);
  auto col_c = GeneratorColumn(23);
  core::GroupedSpec a, b, c;
  a.values = col_a.get();
  b.values = col_b.get();
  c.values = col_c.get();

  ASSERT_TRUE(scheduler.Execute(a, TestOptions(), 0).ok());
  ASSERT_TRUE(scheduler.Execute(b, TestOptions(), 0).ok());
  ASSERT_TRUE(scheduler.Execute(c, TestOptions(), 0).ok());  // evicts a
  ASSERT_TRUE(scheduler.Execute(a, TestOptions(), 0).ok());  // miss: evicted
  EXPECT_EQ(scheduler.stats().result_cache_hits, 0u);
  ASSERT_TRUE(scheduler.Execute(a, TestOptions(), 0).ok());  // hit
  EXPECT_EQ(scheduler.stats().result_cache_hits, 1u);
}

}  // namespace
}  // namespace engine
}  // namespace isla
