// Regressions for the event-loop query server and the fixes that shipped
// with it: the ThreadGroup session-thread leak, the admission-control
// TOCTOU, substring-matched timeout detection, poll(2) deadline
// truncation, plus the new server-side behaviors — pipelined statement
// ordering under read-side backpressure, slow-client write backpressure,
// and `SHOW SERVER STATS`.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "distributed/worker.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/query_server.h"
#include "net/server_stats.h"
#include "net/worker_server.h"
#include "runtime/thread_pool.h"
#include "storage/block.h"

namespace isla {
namespace net {
namespace {

void SleepMillis(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Polls `predicate` until it holds or `timeout_millis` elapses.
bool WaitFor(const std::function<bool()>& predicate, int64_t timeout_millis) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_millis);
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    SleepMillis(5);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Satellite: typed timeouts (no more substring matching on "timed out")
// ---------------------------------------------------------------------------

TEST(TimeoutTyping, MessageTextAloneDoesNotMakeATimeout) {
  // The server idle-tick check used to substring-match "timed out" in the
  // message, so any error whose text happened to contain those words was
  // silently treated as an idle tick and swallowed. The timeout kind is a
  // typed flag now; message text must not matter.
  Status impostor = Status::IOError("worker timed out upstream, giving up");
  EXPECT_TRUE(impostor.IsIOError());
  EXPECT_FALSE(impostor.IsTimedOut());

  Status real = Status::IOTimeout("recv timed out");
  EXPECT_TRUE(real.IsIOError());  // still an IOError to older callers
  EXPECT_TRUE(real.IsTimedOut());
}

TEST(TimeoutTyping, RecvDeadlineYieldsTypedTimeout) {
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto client = TcpConnect("127.0.0.1", (*listener)->port(), 2'000);
  ASSERT_TRUE(client.ok()) << client.status();
  auto server_side = (*listener)->Accept(2'000);
  ASSERT_TRUE(server_side.ok()) << server_side.status();

  (*client)->set_recv_deadline_millis(50);
  auto r = (*client)->RecvFrame();  // nothing is ever sent
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status();
  EXPECT_TRUE(r.status().IsTimedOut()) << r.status();
}

// ---------------------------------------------------------------------------
// Satellite: poll deadline truncation
// ---------------------------------------------------------------------------

TEST(ClampPollTimeout, LargeDeadlinesClampInsteadOfWrapping) {
  // A remaining budget past INT_MAX ms cast straight to int goes negative,
  // which poll(2) reads as "wait forever" — a deadline that disables
  // itself. The clamp must saturate instead.
  EXPECT_EQ(ClampPollTimeoutMillis(0), 0);
  EXPECT_EQ(ClampPollTimeoutMillis(-5), 0);
  EXPECT_EQ(ClampPollTimeoutMillis(250), 250);
  EXPECT_EQ(ClampPollTimeoutMillis(INT_MAX), INT_MAX);
  EXPECT_EQ(ClampPollTimeoutMillis(static_cast<int64_t>(INT_MAX) + 1),
            INT_MAX);
  EXPECT_EQ(ClampPollTimeoutMillis(INT64_MAX), INT_MAX);
}

// ---------------------------------------------------------------------------
// Satellite: ThreadGroup reaps finished threads
// ---------------------------------------------------------------------------

TEST(ThreadGroupReap, SequentialSpawnsDoNotAccumulateHandles) {
  runtime::ThreadGroup group;
  for (int i = 0; i < 100; ++i) {
    std::atomic<bool> ran{false};
    group.Spawn([&ran] { ran.store(true); });
    ASSERT_TRUE(WaitFor([&] { return ran.load(); }, 5'000));
  }
  EXPECT_EQ(group.spawned_count(), 100u);
  // Each Spawn reaps every thread already finished; only the most recent
  // spawn (whose done flag may not be visible yet) can linger. Without
  // reaping this is 100.
  EXPECT_LE(group.live_count(), 4u);
  group.JoinAll();
  EXPECT_EQ(group.live_count(), 0u);
  EXPECT_EQ(group.spawned_count(), 100u);  // lifetime counter survives joins
}

TEST(ThreadGroupReap, WorkerServerSequentialSessionsStayBounded) {
  // The original leak: thread-per-connection WorkerServer pushed one
  // std::thread handle per session and never dropped it, so a long-lived
  // daemon grew without bound. 100 sequential sessions must leave the
  // group holding a handful of handles, not ~101.
  auto block = [](double seedish) {
    std::vector<double> v(16, seedish);
    return std::make_shared<storage::MemoryBlock>(std::move(v));
  };
  WorkerServer server(std::make_unique<distributed::Worker>(
      0, block(1.0), block(0.5), block(0.0)));
  ASSERT_TRUE(server.Start().ok());

  for (int i = 0; i < 100; ++i) {
    uint64_t before = server.thread_group().spawned_count();
    auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
    ASSERT_TRUE(conn.ok()) << conn.status();
    (*conn)->Close();
    // Wait for the session thread to be spawned before connecting again,
    // so sessions (and therefore reap opportunities) are truly sequential.
    ASSERT_TRUE(WaitFor(
        [&] { return server.thread_group().spawned_count() > before; },
        10'000));
  }
  EXPECT_GE(server.thread_group().spawned_count(), 101u);  // accept + 100
  EXPECT_LE(server.thread_group().live_count(), 20u);
  server.Stop();
  EXPECT_EQ(server.thread_group().live_count(), 0u);
}

// ---------------------------------------------------------------------------
// EventLoop basics
// ---------------------------------------------------------------------------

TEST(EventLoop, DispatchesEventsAndPostedTasks) {
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);

  std::atomic<int> bytes_seen{0};
  ASSERT_TRUE(loop.Add(fds[0], EPOLLIN, [&](uint32_t) {
                    char buf[64];
                    ssize_t n;
                    while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
                      bytes_seen.fetch_add(static_cast<int>(n));
                    }
                  })
                  .ok());

  std::thread runner([&] { loop.Run(50); });
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  EXPECT_TRUE(WaitFor([&] { return bytes_seen.load() == 3; }, 5'000));

  std::atomic<bool> task_ran{false};
  loop.Post([&] { task_ran.store(true); });
  EXPECT_TRUE(WaitFor([&] { return task_ran.load(); }, 5'000));

  loop.Stop();
  runner.join();
  loop.Remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, StopIsPromptWithoutPendingEvents) {
  EventLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::thread runner([&] { loop.Run(/*tick_millis=*/60'000); });
  SleepMillis(20);  // let it reach epoll_wait with the long tick
  auto start = std::chrono::steady_clock::now();
  loop.Stop();
  runner.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 5'000);  // the eventfd wakeup, not the 60s tick
}

// ---------------------------------------------------------------------------
// QueryServer admission control
// ---------------------------------------------------------------------------

TEST(QueryServerAdmission, ConcurrentConnectHammerNeverOvershootsLimit) {
  // The original check was load-then-add: two accepts could both read
  // active < max and both admit. Reserve-then-accept makes overshoot
  // impossible; this hammer holds every connection open until all have
  // been answered, so admitted sessions cannot free slots mid-count.
  QueryServerOptions options;
  options.max_sessions = 4;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 32;
  std::atomic<int> admitted{0};
  std::atomic<int> refused{0};
  std::atomic<int> answered{0};
  std::mutex mu;
  std::condition_variable all_answered;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto conn = TcpConnect("127.0.0.1", server.port(), 5'000);
      ASSERT_TRUE(conn.ok()) << conn.status();
      (*conn)->set_recv_deadline_millis(10'000);
      auto first = (*conn)->RecvFrame();
      ASSERT_TRUE(first.ok()) << first.status();
      if (first->rfind("ok\n", 0) == 0) {
        admitted.fetch_add(1);
      } else {
        EXPECT_NE(first->find("error: ResourceExhausted"), std::string::npos)
            << *first;
        refused.fetch_add(1);
      }
      // Hold the connection until every client has its answer: while any
      // admitted session is still open, no refused client's slot can have
      // come from an early disconnect.
      {
        std::unique_lock<std::mutex> lock(mu);
        if (answered.fetch_add(1) + 1 == kClients) {
          all_answered.notify_all();
        } else {
          all_answered.wait(lock,
                            [&] { return answered.load() == kClients; });
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(admitted.load(), 4);
  EXPECT_EQ(refused.load(), kClients - 4);
  EXPECT_EQ(server.peak_sessions(), 4u);  // never overshot, even transiently
  EXPECT_EQ(server.sessions_refused(), static_cast<uint64_t>(kClients - 4));
  EXPECT_EQ(server.sessions_served(), 4u);

  // Dropped connections release their slots: new sessions get in again.
  ASSERT_TRUE(WaitFor([&] { return server.active_sessions() == 0; }, 10'000));
  auto later = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(later.ok());
  auto greeting = (*later)->RecvFrame();
  ASSERT_TRUE(greeting.ok()) << greeting.status();
  EXPECT_EQ(greeting->rfind("ok\n", 0), 0u) << *greeting;
  server.Stop();
}

// ---------------------------------------------------------------------------
// QueryServer: pipelining, backpressure, stats
// ---------------------------------------------------------------------------

TEST(QueryServerLoop, PipelinedStatementsAnswerInOrderPastQueueLimit) {
  // Many statements in flight at once, far beyond max_pending_statements:
  // the server pauses reading (TCP backpressure) instead of reordering or
  // erroring, and every response comes back in statement order.
  QueryServerOptions options;
  options.max_pending_statements = 4;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(conn.ok());
  (*conn)->set_deadline_millis(30'000);
  ASSERT_TRUE((*conn)->RecvFrame().ok());  // greeting

  constexpr int kPairs = 10;
  for (int i = 0; i < kPairs; ++i) {
    std::string precision = std::to_string(i) + ".5";
    ASSERT_TRUE((*conn)->SendFrame("SET precision " + precision).ok());
    ASSERT_TRUE((*conn)->SendFrame("SHOW SETTINGS").ok());
  }
  for (int i = 0; i < kPairs; ++i) {
    std::string precision = std::to_string(i) + ".5";
    auto set_response = (*conn)->RecvFrame();
    ASSERT_TRUE(set_response.ok()) << set_response.status();
    EXPECT_EQ(set_response->rfind("ok\n", 0), 0u) << *set_response;
    auto show_response = (*conn)->RecvFrame();
    ASSERT_TRUE(show_response.ok()) << show_response.status();
    EXPECT_NE(show_response->find("precision = " + precision),
              std::string::npos)
        << "pair " << i << ": " << *show_response;
  }
  server.Stop();
}

TEST(QueryServerLoop, SlowClientIsDisconnectedAtHighWaterMark) {
  // A client that pipelines statements but never reads responses: the
  // kernel buffers fill (tiny SO_SNDBUF server-side, tiny SO_RCVBUF
  // client-side), the session's outbound buffer crosses the high-water
  // mark, and the server drops it — instead of buffering without bound or
  // letting the stalled reader pin resources. Other sessions keep working.
  QueryServerOptions options;
  options.max_pending_statements = 256;
  options.max_outbound_bytes = 4 * 1024;
  options.sndbuf_bytes = 2 * 1024;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 1024;  // the kernel clamps up to its floor; still tiny
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Never read anything (not even the greeting); just pile on statements
  // whose responses are a few hundred bytes each.
  std::string frame = EncodeFrame("SHOW SETTINGS");
  for (int i = 0; i < 256; ++i) {
    size_t off = 0;
    bool gone = false;
    while (off < frame.size()) {
      ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                         MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        struct pollfd p = {fd, POLLOUT, 0};
        (void)::poll(&p, 1, 100);
        continue;
      }
      gone = true;  // EPIPE/ECONNRESET: the server already dropped us
      break;
    }
    if (gone) break;
  }

  EXPECT_TRUE(
      WaitFor([&] { return server.slow_client_disconnects() >= 1; }, 30'000))
      << "slow client was never disconnected";
  ::close(fd);

  // The server is healthy: a fresh, well-behaved session is served.
  auto healthy = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE((*healthy)->RecvFrame().ok());
  ASSERT_TRUE((*healthy)->SendFrame("SHOW TABLES").ok());
  auto response = (*healthy)->RecvFrame();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->rfind("ok\n", 0), 0u) << *response;
  server.Stop();
}

TEST(QueryServerLoop, ShowServerStatsReportsSessionsLatencyAndScans) {
  QueryServer server;
  ASSERT_TRUE(server.Start().ok());
  auto conn = TcpConnect("127.0.0.1", server.port(), 2'000);
  ASSERT_TRUE(conn.ok());
  (*conn)->set_deadline_millis(30'000);
  ASSERT_TRUE((*conn)->RecvFrame().ok());  // greeting

  auto roundtrip = [&](const std::string& statement) {
    EXPECT_TRUE((*conn)->SendFrame(statement).ok());
    auto response = (*conn)->RecvFrame();
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  };
  roundtrip("CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e5 BLOCKS 4");
  roundtrip("SELECT AVG(value) FROM t WITHIN 0.5");

  std::string stats = roundtrip("SHOW SERVER STATS");
  EXPECT_EQ(stats.rfind("ok\n", 0), 0u) << stats;
  EXPECT_NE(stats.find("active_sessions = 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("peak_sessions = 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("sessions_served = 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("max_sessions = 64"), std::string::npos) << stats;
  // CREATE + SELECT were executed before the stats statement — and the
  // stats statement itself, answered inline on the loop, is not counted.
  EXPECT_NE(stats.find("statements = 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("stmts_per_sec = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("latency_p50_ms = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("latency_p99_ms = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("kernels = "), std::string::npos) << stats;
  // Fault-recovery counters (process-global; zero here, but the lines
  // must render so operators can watch failover activity).
  EXPECT_NE(stats.find("transport_reconnects = "), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("shard_retries = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("shard_failovers = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("hedged_requests = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("hedge_wins = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("shards_exhausted = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("workers_registered = "), std::string::npos) << stats;
  EXPECT_NE(stats.find("scans[t] = 1"), std::string::npos) << stats;

  // Case-insensitive, like the rest of the mini-SQL surface.
  std::string again = roundtrip("show server stats");
  EXPECT_NE(again.find("statements = 2"), std::string::npos) << again;

  // StatsText() is the same body, for the daemon's --stats ticker.
  EXPECT_NE(server.StatsText().find("sessions_served = 1"),
            std::string::npos);
  server.Stop();
}

TEST(ServerStats, ScanTargetParsesOnlySelects) {
  EXPECT_EQ(ServerStatsRegistry::ScanTargetOf(
                "SELECT AVG(value) FROM t WITHIN 0.5"),
            "t");
  EXPECT_EQ(ServerStatsRegistry::ScanTargetOf("select sum(x) from  big_tbl"),
            "big_tbl");
  EXPECT_EQ(ServerStatsRegistry::ScanTargetOf("SHOW TABLES"), "");
  EXPECT_EQ(ServerStatsRegistry::ScanTargetOf("CREATE TABLE t FROM X"), "");
  EXPECT_EQ(ServerStatsRegistry::ScanTargetOf("SELECT 1"), "");
}

TEST(ServerStats, LatencyHistogramPercentilesAreOrdered) {
  LatencyHistogram h;
  for (int i = 0; i < 98; ++i) h.Record(100);     // the p50 cluster
  for (int i = 0; i < 2; ++i) h.Record(50'000);   // the tail
  EXPECT_EQ(h.count(), 100u);
  double p50 = h.PercentileMicros(0.50);
  double p99 = h.PercentileMicros(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_LT(p50, 1'000.0);   // the cluster at ~100us
  EXPECT_GT(p99, 10'000.0);  // the outlier at 50ms
}

TEST(ServerStats, AllSubMicrosecondWorkloadReportsZero) {
  // The old geometric-midpoint estimate reported p50 = sqrt(1·2) ≈ 1.41 µs
  // when every statement was sub-microsecond. Bucket 0 is [0, 2) µs and
  // starts at 0, so 0 is the only honest answer.
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.Record(0);
  for (int i = 0; i < 50; ++i) h.Record(1);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.PercentileMicros(q), 0.0) << "q=" << q;
  }
}

TEST(ServerStats, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileMicros(0.5), 0.0);
}

TEST(ServerStats, RankInterpolatesLinearlyWithinItsBucket) {
  // Four samples of 100 µs all land in bucket 6 ([64, 128)); rank r of
  // {0..3} maps to 64 + 64·r/4.
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.Record(100);
  EXPECT_EQ(h.PercentileMicros(0.0), 64.0);
  EXPECT_EQ(h.PercentileMicros(0.5), 80.0);   // rank 1 of 4
  EXPECT_EQ(h.PercentileMicros(1.0), 112.0);  // rank 3 of 4
  // Never above the bucket's upper bound — the midpoint bug's other face.
  EXPECT_LT(h.PercentileMicros(1.0), 128.0);
}

TEST(ServerStats, MixedBucketsInterpolateFromLowerBound) {
  // Two sub-µs statements and two at ~100 µs: the low ranks sit in bucket
  // 0 (which starts at 0), the high ranks interpolate inside bucket 6.
  LatencyHistogram h;
  h.Record(1);
  h.Record(1);
  h.Record(100);
  h.Record(100);
  EXPECT_EQ(h.PercentileMicros(0.0), 0.0);
  EXPECT_EQ(h.PercentileMicros(1.0), 96.0);  // rank 3 → idx 1 of 2 in [64,128)
}

TEST(ServerStats, OpenEndedTopBucketReportsItsLowerBound) {
  LatencyHistogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.PercentileMicros(1.0),
            std::ldexp(1.0, LatencyHistogram::kBuckets - 1));
}

}  // namespace
}  // namespace net
}  // namespace isla
