// Unit tests for engine/session.h — the DDL + query session layer.

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "engine/session.h"
#include "storage/file_block.h"

namespace isla {
namespace engine {
namespace {

TEST(Session, CreateNormalTableAndQuery) {
  Session s;
  auto created = s.Execute(
      "CREATE TABLE sensors FROM NORMAL(100, 20) ROWS 1e7 BLOCKS 10");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_NE(created->find("sensors"), std::string::npos);
  EXPECT_NE(created->find("10000000"), std::string::npos);

  auto answer =
      s.Execute("SELECT AVG(value) FROM sensors WITHIN 0.5");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_NE(answer->find("AVG = "), std::string::npos);
  EXPECT_NE(answer->find("100."), std::string::npos);
}

TEST(Session, CreateExponentialAndUniform) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE e FROM EXPONENTIAL(0.1) ROWS 1e6 BLOCKS 4")
          .ok());
  ASSERT_TRUE(
      s.Execute("CREATE TABLE u FROM UNIFORM(1, 199) ROWS 1e6 BLOCKS 4")
          .ok());
  auto show = s.Execute("SHOW TABLES");
  ASSERT_TRUE(show.ok());
  EXPECT_NE(show->find("e"), std::string::npos);
  EXPECT_NE(show->find("u"), std::string::npos);
}

TEST(Session, SeedControlsData) {
  Session s;
  ASSERT_TRUE(
      s.Execute(
           "CREATE TABLE a FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 2 SEED 7")
          .ok());
  auto table = s.catalog()->GetTable("a");
  ASSERT_TRUE(table.ok());
  auto col = (*table)->GetColumn("value");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->num_rows(), 1'000'000u);
}

TEST(Session, DuplicateCreateFails) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(0, 1) ROWS 100 BLOCKS 2").ok());
  auto dup =
      s.Execute("CREATE TABLE t FROM NORMAL(0, 1) ROWS 100 BLOCKS 2");
  EXPECT_FALSE(dup.ok());
}

TEST(Session, DropTable) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(0, 1) ROWS 100 BLOCKS 2").ok());
  auto dropped = s.Execute("DROP TABLE t");
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(s.Execute("DROP TABLE t").status().IsNotFound());
  auto show = s.Execute("SHOW TABLES");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(*show, "(no tables)");
}

TEST(Session, DescribeListsBlocks) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(5, 1) ROWS 1000 BLOCKS 3").ok());
  auto desc = s.Execute("DESCRIBE t");
  ASSERT_TRUE(desc.ok());
  EXPECT_NE(desc->find("1000 rows in 3 blocks"), std::string::npos);
  EXPECT_NE(desc->find("gen["), std::string::npos);
}

TEST(Session, CreateFromFiles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "isla_session_test";
  fs::create_directories(dir);
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0};
  std::string pa = (dir / "a.islb").string();
  std::string pb = (dir / "b.islb").string();
  ASSERT_TRUE(storage::WriteBlockFile(pa, a).ok());
  ASSERT_TRUE(storage::WriteBlockFile(pb, b).ok());

  Session s;
  auto created = s.Execute("CREATE TABLE f FROM FILES('" + pa + "', '" + pb +
                           "')");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_NE(created->find("5 rows"), std::string::npos);

  auto exact = s.Execute("SELECT AVG(value) FROM f USING exact");
  ASSERT_TRUE(exact.ok());
  EXPECT_NE(exact->find("3.0000"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Session, CreateFromMissingFileFails) {
  Session s;
  EXPECT_FALSE(
      s.Execute("CREATE TABLE f FROM FILES('/nope/missing.islb')").ok());
}

TEST(Session, RejectsMalformedStatements) {
  Session s;
  EXPECT_FALSE(s.Execute("").ok());
  EXPECT_FALSE(s.Execute("FROB TABLE t").ok());
  EXPECT_FALSE(s.Execute("CREATE TABLE").ok());
  EXPECT_FALSE(s.Execute("CREATE TABLE t FROM GAUSSIAN(1,2) ROWS 10 "
                         "BLOCKS 2")
                   .ok());
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM NORMAL(1) ROWS 10 BLOCKS 2").ok());
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM NORMAL(1, 2) ROWS 1 BLOCKS 5").ok());
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM NORMAL(1, 2) ROWS 10 BLOCKS 2 junk")
          .ok());
}

TEST(Session, RejectsBadDistributionParams) {
  Session s;
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM NORMAL(0, -1) ROWS 10 BLOCKS 2").ok());
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM EXPONENTIAL(0) ROWS 10 BLOCKS 2").ok());
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM UNIFORM(5, 5) ROWS 10 BLOCKS 2").ok());
}

TEST(Session, SelectWithMethodAndSum) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(50, 5) ROWS 1e6 BLOCKS 4").ok());
  auto sum = s.Execute("SELECT SUM(value) FROM t WITHIN 0.5");
  ASSERT_TRUE(sum.ok());
  EXPECT_NE(sum->find("SUM = "), std::string::npos);
  auto us = s.Execute("SELECT AVG(value) FROM t WITHIN 0.5 USING uniform");
  ASSERT_TRUE(us.ok());
  EXPECT_NE(us->find("method=uniform"), std::string::npos);
}

TEST(Session, GroupsClauseAddsAlignedKeyColumn) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(50, 5) ROWS 1e5 BLOCKS 4 "
                "SEED 3 GROUPS 3")
          .ok());
  auto desc = s.Execute("DESCRIBE t");
  ASSERT_TRUE(desc.ok());
  EXPECT_NE(desc->find("grp"), std::string::npos) << *desc;

  auto grouped = s.Execute(
      "SELECT AVG(value) FROM t WHERE value >= 50 GROUP BY grp WITHIN 0.5");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  EXPECT_NE(grouped->find("3 group(s)"), std::string::npos) << *grouped;
  EXPECT_NE(grouped->find("grp=0"), std::string::npos) << *grouped;
  EXPECT_NE(grouped->find("count~"), std::string::npos) << *grouped;

  auto count = s.Execute("SELECT COUNT(value) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_NE(count->find("COUNT = 100000"), std::string::npos) << *count;
}

TEST(Session, SketchAggregatesRenderRankBands) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(100, 10) ROWS 1e5 BLOCKS 4 "
                "SEED 5 GROUPS 3")
          .ok());

  auto median = s.Execute("SELECT MEDIAN(value) FROM t");
  ASSERT_TRUE(median.ok()) << median.status();
  EXPECT_NE(median->find("MEDIAN = "), std::string::npos) << *median;
  EXPECT_NE(median->find("rank +/- "), std::string::npos) << *median;
  EXPECT_NE(median->find("value in ["), std::string::npos) << *median;

  auto quant = s.Execute("SELECT QUANTILE(value, 0.9) FROM t GROUP BY grp");
  ASSERT_TRUE(quant.ok()) << quant.status();
  EXPECT_NE(quant->find("3 group(s)"), std::string::npos) << *quant;
  EXPECT_NE(quant->find("rank +/- "), std::string::npos) << *quant;

  auto hist = s.Execute("SELECT HISTOGRAM(value, 8) FROM t");
  ASSERT_TRUE(hist.ok()) << hist.status();
  EXPECT_NE(hist->find("bins:"), std::string::npos) << *hist;
  EXPECT_NE(hist->find("range ["), std::string::npos) << *hist;
}

TEST(Session, TopKGroupsReportPreCutTotal) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(100, 10) ROWS 1e5 BLOCKS 4 "
                "SEED 5 GROUPS 4")
          .ok());
  auto top = s.Execute("SELECT AVG(value) FROM t GROUP BY grp TOP 2");
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_NE(top->find("top 2 of 4 group(s)"), std::string::npos) << *top;
}

TEST(Session, GroupsClauseValidatesCardinality) {
  Session s;
  EXPECT_FALSE(
      s.Execute("CREATE TABLE t FROM NORMAL(1, 1) ROWS 100 BLOCKS 2 GROUPS 0")
          .ok());
  EXPECT_FALSE(
      s.Execute(
           "CREATE TABLE t FROM NORMAL(1, 1) ROWS 100 BLOCKS 2 GROUPS 9999")
          .ok());
}

TEST(Session, DuplicateSeedOrGroupsClausesAreRejected) {
  Session s;
  EXPECT_FALSE(
      s.Execute(
           "CREATE TABLE t FROM NORMAL(1, 1) ROWS 100 BLOCKS 2 SEED 1 SEED 2")
          .ok());
  EXPECT_FALSE(s.Execute("CREATE TABLE t FROM NORMAL(1, 1) ROWS 100 BLOCKS "
                         "2 GROUPS 3 GROUPS 5")
                   .ok());
}

TEST(Session, SelectMissingTableFails) {
  Session s;
  EXPECT_TRUE(
      s.Execute("SELECT AVG(value) FROM ghost").status().IsNotFound());
}

TEST(Session, DescribeMissingTableFails) {
  Session s;
  EXPECT_TRUE(s.Execute("DESCRIBE ghost").status().IsNotFound());
}

TEST(Session, SetRetunesOptionsAndValidatesAsAWhole) {
  Session s;
  EXPECT_EQ(s.options().precision, 0.1);
  ASSERT_TRUE(s.Execute("SET precision 0.5").ok());
  EXPECT_EQ(s.options().precision, 0.5);
  ASSERT_TRUE(s.Execute("SET parallelism 2").ok());
  EXPECT_EQ(s.options().parallelism, 2u);

  // Invalid values are rejected and leave the previous settings intact.
  EXPECT_TRUE(s.Execute("SET confidence 7").status().IsInvalidArgument());
  EXPECT_EQ(s.options().confidence, 0.95);
  EXPECT_TRUE(s.Execute("SET nonsense 1").status().IsInvalidArgument());
  EXPECT_TRUE(s.Execute("SET precision 0.2 junk")
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(s.options().precision, 0.5);

  auto settings = s.Execute("SHOW SETTINGS");
  ASSERT_TRUE(settings.ok());
  EXPECT_NE(settings->find("precision = 0.5"), std::string::npos);
  EXPECT_NE(settings->find("parallelism = 2"), std::string::npos);
}

TEST(Session, SetRejectsOutOfRangeUnsignedValues) {
  // Remote clients reach SET through the query server, and a double →
  // unsigned cast is UB out of range — these must be rejected before the
  // cast, not crash the sanitized build.
  Session s;
  EXPECT_TRUE(
      s.Execute("SET parallelism -1").status().IsInvalidArgument());
  EXPECT_TRUE(
      s.Execute("SET parallelism 1e10").status().IsInvalidArgument());
  EXPECT_TRUE(s.Execute("SET seed -3").status().IsInvalidArgument());
  EXPECT_TRUE(s.Execute("SET seed 1e30").status().IsInvalidArgument());
  EXPECT_TRUE(s.Execute("SET pilot -1").status().IsInvalidArgument());
  EXPECT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(1, 1) ROWS 100 BLOCKS 2 "
                "SEED -5")
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(1, 1) ROWS 1e300 BLOCKS 2")
          .status()
          .IsInvalidArgument());
  // Still healthy afterwards.
  EXPECT_TRUE(s.Execute("SET seed 12345").ok());
}

TEST(Session, SetPrecisionBecomesTheSelectDefault) {
  Session s;
  ASSERT_TRUE(
      s.Execute("CREATE TABLE t FROM NORMAL(100, 20) ROWS 1e5 BLOCKS 2")
          .ok());
  ASSERT_TRUE(s.Execute("SET precision 0.7").ok());
  // No WITHIN clause: the session default applies and is echoed in the
  // engine diagnostics line.
  auto r = s.Execute("SELECT AVG(value) FROM t");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("precision=+/-0.7"), std::string::npos) << *r;
  // An explicit WITHIN still wins.
  r = s.Execute("SELECT AVG(value) FROM t WITHIN 0.9");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("precision=+/-0.9"), std::string::npos) << *r;
}

}  // namespace
}  // namespace engine
}  // namespace isla
