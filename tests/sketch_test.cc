// Unit tests for stats/sketch.h — the deterministic mergeable quantile
// sketch behind MEDIAN/QUANTILE/HISTOGRAM. The load-bearing contracts:
// rank error within the reported bound, merge-in-order ≡ sequential insert
// (bit-identical state, the determinism-for-any-parallelism invariant),
// NaN/±0.0/±inf handling, and FromParts round-trip + validation (the wire
// format depends on it).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "stats/sketch.h"
#include "util/rng.h"

namespace isla {
namespace stats {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool BitEqual(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ba == bb;
}

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  for (auto& x : v) x = 1000.0 * rng.NextDouble() - 500.0;
  return v;
}

/// |true_rank(value)/n − q|, with true_rank the count of values < `value`.
double ObservedRankError(const std::vector<double>& sorted, double value,
                         double q) {
  auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  double rank = static_cast<double>(lo - sorted.begin());
  return std::fabs(rank / static_cast<double>(sorted.size()) - q);
}

TEST(QuantileSketch, EmptySketch) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.error_weight(), 0u);
  EXPECT_DOUBLE_EQ(s.RankErrorFraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.Query(0.5), 0.0);
  EXPECT_TRUE(s.Histogram(4).empty() || s.Histogram(4).size() == 4);
  EXPECT_EQ(s.min(), kInf);
  EXPECT_EQ(s.max(), -kInf);
}

TEST(QuantileSketch, ExactWhileUnderCapacity) {
  QuantileSketch s(64);
  for (int i = 63; i >= 1; --i) s.Add(static_cast<double>(i));
  // 63 values, no compaction yet: every quantile is exact.
  EXPECT_EQ(s.error_weight(), 0u);
  EXPECT_DOUBLE_EQ(s.Query(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Query(0.5), 32.0);
  EXPECT_DOUBLE_EQ(s.Query(1.0), 63.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 63.0);
}

TEST(QuantileSketch, RankErrorWithinReportedBound) {
  const size_t n = 200000;
  std::vector<double> values = RandomValues(n, 2024);
  QuantileSketch s;
  for (double v : values) s.Add(v);
  EXPECT_EQ(s.count(), n);
  EXPECT_GT(s.error_weight(), 0u);
  EXPECT_LT(s.RankErrorFraction(), 0.05) << "default capacity too coarse";

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double err = ObservedRankError(sorted, s.Query(q), q);
    // +1/n slack: the deterministic bound is in rows, the check in ranks.
    EXPECT_LE(err, s.RankErrorFraction() + 1.0 / static_cast<double>(n))
        << "q=" << q;
  }
}

TEST(QuantileSketch, MergeInBlockOrderIsDeterministic) {
  // The engine's invariant: a fixed block decomposition, per-block
  // sketches built in ANY order (that's what parallelism changes), merged
  // in block order, must reach bit-identical state. Build the per-chunk
  // sketches forward and backward and fold both in chunk order.
  const size_t n = 50000;
  std::vector<double> values = RandomValues(n, 7);
  for (size_t chunks : {2, 3, 8, 17}) {
    const size_t per = (n + chunks - 1) / chunks;
    auto build_chunk = [&](size_t c) {
      QuantileSketch part;
      const size_t lo = c * per;
      const size_t hi = std::min(n, lo + per);
      for (size_t i = lo; i < hi; ++i) part.Add(values[i]);
      return part;
    };
    std::vector<QuantileSketch> forward, backward(chunks, QuantileSketch());
    for (size_t c = 0; c < chunks; ++c) forward.push_back(build_chunk(c));
    for (size_t c = chunks; c-- > 0;) backward[c] = build_chunk(c);

    QuantileSketch a, b;
    for (size_t c = 0; c < chunks; ++c) {
      ASSERT_TRUE(a.Merge(forward[c]).ok());
      ASSERT_TRUE(b.Merge(backward[c]).ok());
    }
    ASSERT_EQ(a.count(), n);
    ASSERT_EQ(a.count(), b.count()) << chunks;
    ASSERT_EQ(a.error_weight(), b.error_weight()) << chunks;
    ASSERT_PRED2(BitEqual, a.min(), b.min()) << chunks;
    ASSERT_PRED2(BitEqual, a.max(), b.max()) << chunks;
    ASSERT_EQ(a.num_levels(), b.num_levels()) << chunks;
    for (size_t l = 0; l < a.num_levels(); ++l) {
      ASSERT_EQ(a.level_parity(l), b.level_parity(l)) << chunks;
      ASSERT_EQ(a.level(l).size(), b.level(l).size()) << chunks;
      for (size_t i = 0; i < a.level(l).size(); ++i) {
        ASSERT_PRED2(BitEqual, a.level(l)[i], b.level(l)[i])
            << "chunks=" << chunks << " l=" << l << " i=" << i;
      }
    }
  }
}

TEST(QuantileSketch, MergedSketchStillMeetsErrorBound) {
  const size_t n = 100000;
  std::vector<double> values = RandomValues(n, 13);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (size_t chunks : {4, 32}) {
    QuantileSketch merged;
    const size_t per = (n + chunks - 1) / chunks;
    for (size_t c = 0; c < chunks; ++c) {
      QuantileSketch part;
      const size_t lo = c * per;
      const size_t hi = std::min(n, lo + per);
      for (size_t i = lo; i < hi; ++i) part.Add(values[i]);
      ASSERT_TRUE(merged.Merge(part).ok());
    }
    ASSERT_EQ(merged.count(), n);
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const double err = ObservedRankError(sorted, merged.Query(q), q);
      EXPECT_LE(err,
                merged.RankErrorFraction() + 1.0 / static_cast<double>(n))
          << "chunks=" << chunks << " q=" << q;
    }
  }
}

TEST(QuantileSketch, MergeRejectsCapacityMismatch) {
  QuantileSketch a(64);
  QuantileSketch b(128);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(QuantileSketch, NanIsDropped) {
  QuantileSketch s;
  s.Add(1.0);
  s.Add(kNan);
  s.Add(3.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(QuantileSketch, InfinitiesRankNormally) {
  QuantileSketch s;
  s.Add(-kInf);
  s.Add(0.0);
  s.Add(kInf);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.Query(0.0), -kInf);
  EXPECT_DOUBLE_EQ(s.Query(0.5), 0.0);
  EXPECT_EQ(s.Query(1.0), kInf);
}

TEST(QuantileSketch, SignedZeroOrderIsDeterministic) {
  // -0.0 < +0.0 by bit-pattern tie-break: insertion order cannot change
  // which zero a quantile returns.
  QuantileSketch a, b;
  a.Add(0.0);
  a.Add(-0.0);
  b.Add(-0.0);
  b.Add(0.0);
  EXPECT_PRED2(BitEqual, a.Query(0.25), b.Query(0.25));
  EXPECT_PRED2(BitEqual, a.Query(0.25), -0.0);
  EXPECT_PRED2(BitEqual, a.Query(1.0), 0.0);
}

TEST(QuantileSketch, HistogramWeightsSumToCount) {
  const size_t n = 30000;
  QuantileSketch s;
  for (double v : RandomValues(n, 99)) s.Add(v);
  for (size_t bins : {1, 2, 7, 64}) {
    std::vector<double> h = s.Histogram(bins);
    ASSERT_EQ(h.size(), bins);
    double total = 0.0;
    for (double w : h) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_DOUBLE_EQ(total, static_cast<double>(s.count())) << bins;
  }
  EXPECT_TRUE(s.Histogram(0).empty());
}

TEST(QuantileSketch, HistogramDegenerateRange) {
  QuantileSketch s;
  for (int i = 0; i < 100; ++i) s.Add(5.0);
  std::vector<double> h = s.Histogram(4);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_DOUBLE_EQ(h[0], 100.0);
  EXPECT_DOUBLE_EQ(h[1] + h[2] + h[3], 0.0);
}

TEST(QuantileSketch, FromPartsRoundTrip) {
  const size_t n = 40000;
  std::vector<double> values = RandomValues(n, 1234);
  QuantileSketch s(128);
  for (double v : values) s.Add(v);

  std::vector<std::vector<double>> levels;
  std::vector<uint8_t> parities;
  for (size_t l = 0; l < s.num_levels(); ++l) {
    levels.push_back(s.level(l));
    parities.push_back(s.level_parity(l));
  }
  Result<QuantileSketch> rt = QuantileSketch::FromParts(
      s.capacity(), s.count(), s.min(), s.max(), s.error_weight(),
      std::move(levels), std::move(parities));
  ASSERT_TRUE(rt.ok()) << rt.status().message();
  EXPECT_EQ(rt->count(), s.count());
  EXPECT_EQ(rt->error_weight(), s.error_weight());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_PRED2(BitEqual, rt->Query(q), s.Query(q)) << q;
  }

  // A deserialized sketch must keep merging identically to the original —
  // this is what forces the parities onto the wire.
  QuantileSketch more_a = std::move(rt).value();
  QuantileSketch more_b = s;
  QuantileSketch extra(128);
  for (double v : RandomValues(10000, 4321)) extra.Add(v);
  ASSERT_TRUE(more_a.Merge(extra).ok());
  ASSERT_TRUE(more_b.Merge(extra).ok());
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    EXPECT_PRED2(BitEqual, more_a.Query(q), more_b.Query(q)) << q;
  }
}

TEST(QuantileSketch, FromPartsValidation) {
  // Bad capacity.
  EXPECT_FALSE(QuantileSketch::FromParts(1, 0, kInf, -kInf, 0, {}, {}).ok());
  EXPECT_FALSE(
      QuantileSketch::FromParts(1 << 20, 0, kInf, -kInf, 0, {}, {}).ok());
  // Parity without a matching level (and vice versa).
  EXPECT_FALSE(
      QuantileSketch::FromParts(64, 0, kInf, -kInf, 0, {}, {1}).ok());
  // Level at/over capacity.
  EXPECT_FALSE(QuantileSketch::FromParts(2, 2, 1.0, 2.0, 0, {{1.0, 2.0}},
                                         {0})
                   .ok());
  // Non-boolean parity.
  EXPECT_FALSE(
      QuantileSketch::FromParts(64, 1, 1.0, 1.0, 0, {{1.0}}, {2}).ok());
  // NaN stored in a level.
  EXPECT_FALSE(
      QuantileSketch::FromParts(64, 1, 1.0, 1.0, 0, {{kNan}}, {0}).ok());
  // Total weight disagrees with count.
  EXPECT_FALSE(
      QuantileSketch::FromParts(64, 5, 1.0, 1.0, 0, {{1.0}}, {0}).ok());
  // A well-formed single-value sketch passes.
  EXPECT_TRUE(
      QuantileSketch::FromParts(64, 1, 1.0, 1.0, 0, {{1.0}}, {0}).ok());
}

TEST(QuantileSketch, ErrorGrowsSlowly) {
  // The bound should stay logarithmic-ish in n: 10× the data must not 10×
  // the error fraction.
  QuantileSketch small_s, large_s;
  for (double v : RandomValues(20000, 5)) small_s.Add(v);
  for (double v : RandomValues(200000, 5)) large_s.Add(v);
  EXPECT_LT(large_s.RankErrorFraction(),
            4.0 * small_s.RankErrorFraction() + 1e-9);
}

}  // namespace
}  // namespace stats
}  // namespace isla
