// End-to-end smoke test: ISLA answers an AVG query on N(100, 20²) within
// the requested precision band.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/datasets.h"

namespace isla {
namespace {

TEST(Smoke, IslaAnswersWithinPrecision) {
  auto ds = workload::MakeNormalDataset(/*rows_total=*/10'000'000,
                                        /*blocks=*/10, /*mu=*/100.0,
                                        /*sigma=*/20.0, /*seed=*/7);
  ASSERT_TRUE(ds.ok()) << ds.status();
  core::IslaOptions options;
  options.precision = 0.5;
  core::IslaEngine engine(options);
  auto result = engine.AggregateAvg(*ds->data());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->average, 100.0, 0.5);
  EXPECT_GT(result->total_samples, 0u);
}

}  // namespace
}  // namespace isla
