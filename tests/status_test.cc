// Unit tests for common/status.h and common/result.h.

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace isla {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
}

TEST(Status, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Status, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad p1");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad p1");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p1");
}

TEST(Status, EachFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, RetryableCoversExactlyTransportFaults) {
  // The failover transport's retry predicate: wire-level faults (IO
  // errors, including timeouts, and corrupted frames) are worth another
  // replica; request-level verdicts are not — every replica would answer
  // them identically.
  EXPECT_TRUE(Status::IOError("conn reset").IsRetryable());
  EXPECT_TRUE(Status::IOTimeout("recv timed out").IsRetryable());
  EXPECT_TRUE(Status::Corruption("bad crc").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::Unimplemented("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("x").IsRetryable());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(Status, CopyAndMovePreserveState) {
  Status s = Status::Corruption("bits flipped");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(copy);
  EXPECT_EQ(moved, s);
}

TEST(Status, StatusCodeToStringCoversAll) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(Status, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::IOError("disk gone");
  EXPECT_EQ(os.str(), "IOError: disk gone");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  ISLA_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Result, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(Result, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(Result, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ISLA_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(Result, AssignOrReturnPropagatesInnerError) {
  Result<int> r = Quarter(6);  // 6/2 = 3 is odd.
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace isla
