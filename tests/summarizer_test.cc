// Unit tests for core/summarizer.h — the Summarization module.

#include <gtest/gtest.h>

#include <vector>

#include "core/summarizer.h"

namespace isla {
namespace core {
namespace {

TEST(Summarize, WeightsBySizes) {
  std::vector<double> avgs = {100.0, 50.0};
  std::vector<uint64_t> sizes = {300, 100};
  auto r = SummarizePartials(avgs, sizes);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), (100.0 * 300 + 50.0 * 100) / 400.0);
}

TEST(Summarize, SingleBlockIsIdentity) {
  std::vector<double> avgs = {42.5};
  std::vector<uint64_t> sizes = {7};
  auto r = SummarizePartials(avgs, sizes);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 42.5);
}

TEST(Summarize, EqualSizesIsPlainMean) {
  std::vector<double> avgs = {1.0, 2.0, 3.0, 4.0};
  std::vector<uint64_t> sizes = {10, 10, 10, 10};
  auto r = SummarizePartials(avgs, sizes);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 2.5);
}

TEST(Summarize, MismatchedLengthsFail) {
  std::vector<double> avgs = {1.0};
  std::vector<uint64_t> sizes = {10, 20};
  EXPECT_TRUE(SummarizePartials(avgs, sizes).status().IsInvalidArgument());
}

TEST(Summarize, EmptyFails) {
  EXPECT_TRUE(SummarizePartials({}, {}).status().IsInvalidArgument());
}

TEST(Summarize, AllZeroSizesFail) {
  std::vector<double> avgs = {1.0, 2.0};
  std::vector<uint64_t> sizes = {0, 0};
  EXPECT_TRUE(SummarizePartials(avgs, sizes).status().IsInvalidArgument());
}

TEST(Summarize, ResultBoundedByPartials) {
  // The weighted mean must lie within [min, max] of the partial answers.
  std::vector<double> avgs = {99.7, 100.2, 100.05};
  std::vector<uint64_t> sizes = {17, 5, 100};
  auto r = SummarizePartials(avgs, sizes);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value(), 99.7);
  EXPECT_LE(r.value(), 100.2);
}

TEST(Summarize, NegativePartialsSupported) {
  std::vector<double> avgs = {-10.0, 10.0};
  std::vector<uint64_t> sizes = {1, 3};
  auto r = SummarizePartials(avgs, sizes);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 5.0);
}

}  // namespace
}  // namespace core
}  // namespace isla
