// Unit tests for util/table_printer.h.

#include <gtest/gtest.h>

#include "util/table_printer.h"

namespace isla {
namespace {

TEST(TablePrinter, HeaderOnly) {
  TablePrinter t({"a", "b"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| a | b |"), std::string::npos);
  EXPECT_NE(out.find("|---|---|"), std::string::npos);
}

TEST(TablePrinter, RowsWidenColumns) {
  TablePrinter t({"x"});
  t.AddRow({"longvalue"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| longvalue |"), std::string::npos);
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(TablePrinter, MultipleRowsKeepOrder) {
  TablePrinter t({"n"});
  t.AddRow({"1"});
  t.AddRow({"2"});
  std::string out = t.ToString();
  EXPECT_LT(out.find("| 1 |"), out.find("| 2 |"));
}

TEST(TablePrinter, FmtFixedDecimals) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(100.0, 4), "100.0000");
  EXPECT_EQ(TablePrinter::Fmt(-0.5, 1), "-0.5");
}

TEST(TablePrinter, EndsWithNewline) {
  TablePrinter t({"h"});
  t.AddRow({"v"});
  std::string out = t.ToString();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace isla
