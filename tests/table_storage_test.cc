// Unit tests for storage/table.h: columns, tables, catalogs.

#include <gtest/gtest.h>

#include <memory>

#include "storage/block.h"
#include "storage/table.h"

namespace isla {
namespace storage {
namespace {

BlockPtr Mem(std::vector<double> values) {
  return std::make_shared<MemoryBlock>(std::move(values));
}

TEST(Column, AppendsAccumulateRows) {
  Column c("v");
  ASSERT_TRUE(c.AppendBlock(Mem({1, 2})).ok());
  ASSERT_TRUE(c.AppendBlock(Mem({3, 4, 5})).ok());
  EXPECT_EQ(c.num_blocks(), 2u);
  EXPECT_EQ(c.num_rows(), 5u);
  EXPECT_EQ(c.name(), "v");
}

TEST(Column, RejectsNullAndEmptyBlocks) {
  Column c("v");
  EXPECT_TRUE(c.AppendBlock(nullptr).IsInvalidArgument());
  EXPECT_TRUE(c.AppendBlock(Mem({})).IsInvalidArgument());
  EXPECT_EQ(c.num_rows(), 0u);
}

TEST(Table, AddAndGetColumn) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a").ok());
  ASSERT_TRUE(t.AppendBlock("a", Mem({1})).ok());
  auto col = t.GetColumn("a");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->num_rows(), 1u);
}

TEST(Table, DuplicateColumnFails) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a").ok());
  EXPECT_EQ(t.AddColumn("a").code(), StatusCode::kAlreadyExists);
}

TEST(Table, MissingColumnFails) {
  Table t("t");
  EXPECT_TRUE(t.GetColumn("nope").status().IsNotFound());
  EXPECT_TRUE(t.AppendBlock("nope", Mem({1})).IsNotFound());
}

TEST(Table, ColumnNamesPreserveInsertionOrder) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("z").ok());
  ASSERT_TRUE(t.AddColumn("a").ok());
  ASSERT_TRUE(t.AddColumn("m").ok());
  EXPECT_EQ(t.ColumnNames(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Table, ColumnsMayHaveDifferentRowCounts) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("a").ok());
  ASSERT_TRUE(t.AddColumn("b").ok());
  ASSERT_TRUE(t.AppendBlock("a", Mem({1, 2, 3})).ok());
  ASSERT_TRUE(t.AppendBlock("b", Mem({1})).ok());
  EXPECT_EQ((*t.GetColumn("a"))->num_rows(), 3u);
  EXPECT_EQ((*t.GetColumn("b"))->num_rows(), 1u);
}

TEST(Catalog, AddAndGet) {
  Catalog cat;
  auto t = std::make_shared<Table>("sales");
  ASSERT_TRUE(cat.AddTable(t).ok());
  auto got = cat.GetTable("sales");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name(), "sales");
}

TEST(Catalog, DuplicateTableFails) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(std::make_shared<Table>("t")).ok());
  EXPECT_EQ(cat.AddTable(std::make_shared<Table>("t")).code(),
            StatusCode::kAlreadyExists);
}

TEST(Catalog, MissingTableFails) {
  Catalog cat;
  EXPECT_TRUE(cat.GetTable("ghost").status().IsNotFound());
}

TEST(Catalog, NullTableRejected) {
  Catalog cat;
  EXPECT_TRUE(cat.AddTable(nullptr).IsInvalidArgument());
}

TEST(Catalog, TableNamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(std::make_shared<Table>("b")).ok());
  ASSERT_TRUE(cat.AddTable(std::make_shared<Table>("a")).ok());
  EXPECT_EQ(cat.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace storage
}  // namespace isla
