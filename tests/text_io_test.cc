// Unit tests for storage/text_io.h — the paper's .txt column format.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/file_block.h"
#include "storage/text_io.h"

namespace isla {
namespace storage {
namespace {

class TextIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("isla_txt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    std::string path = (dir_ / name).string();
    std::ofstream(path) << content;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(TextIoTest, ReadsOneValuePerLine) {
  std::string path = Write("a.txt", "1.5\n-2\n3e2\n");
  auto block = ReadTextColumn(path);
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ((*block)->values(), (std::vector<double>{1.5, -2.0, 300.0}));
}

TEST_F(TextIoTest, SkipsBlankLinesAndWhitespace) {
  std::string path = Write("b.txt", "  1 \n\n \t \n2\n");
  auto block = ReadTextColumn(path);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 2u);
}

TEST_F(TextIoTest, MalformedLineReportsLineNumber) {
  std::string path = Write("c.txt", "1\n2\nnot-a-number\n4\n");
  auto block = ReadTextColumn(path);
  ASSERT_TRUE(block.status().IsCorruption());
  EXPECT_NE(block.status().message().find("line 3"), std::string::npos);
}

TEST_F(TextIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadTextColumn((dir_ / "none.txt").string())
                  .status()
                  .IsIOError());
}

TEST_F(TextIoTest, EmptyFileYieldsEmptyBlock) {
  std::string path = Write("d.txt", "");
  auto block = ReadTextColumn(path);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->size(), 0u);
}

TEST_F(TextIoTest, WriteReadRoundTripPreservesPrecision) {
  std::vector<double> values = {3.141592653589793, -1e-300, 1e300,
                                0.1 + 0.2};
  std::string path = (dir_ / "rt.txt").string();
  ASSERT_TRUE(WriteTextColumn(path, values).ok());
  auto block = ReadTextColumn(path);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ((*block)->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ((*block)->values()[i], values[i]);
  }
}

TEST_F(TextIoTest, ConvertTextToBlockFileRoundTrips) {
  std::string txt = Write("e.txt", "10\n20\n30\n");
  std::string islb = (dir_ / "e.islb").string();
  auto rows = ConvertTextToBlockFile(txt, islb);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 3u);
  auto block = FileBlock::Open(islb);
  ASSERT_TRUE(block.ok());
  EXPECT_DOUBLE_EQ((*block)->ValueAt(1), 20.0);
}

TEST_F(TextIoTest, ConvertPropagatesParseErrors) {
  std::string txt = Write("f.txt", "1\nx\n");
  std::string islb = (dir_ / "f.islb").string();
  EXPECT_TRUE(ConvertTextToBlockFile(txt, islb).status().IsCorruption());
}

}  // namespace
}  // namespace storage
}  // namespace isla
