// Unit tests for runtime/thread_pool.h and runtime/parallel_for.h: the
// sharded pool and the deterministic ParallelFor helper.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace isla {
namespace runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  // Destructor drains the queues before joining.
  // (pool goes out of scope here)
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AllQueuedTasksRunBeforeShutdown) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ShardedSubmissionPreservesPerShardOrder) {
  // Tasks submitted to one shard run in submission order (FIFO queues, no
  // stealing).
  std::vector<int> seen;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.SubmitToShard(1, [&, i] { seen.push_back(i); });
    }
  }
  ASSERT_EQ(seen.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(ThreadPool::Shared(), ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared()->num_threads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (uint32_t par : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ASSERT_TRUE(ParallelFor(hits.size(), par, [&](uint64_t i) {
                  hits[i].fetch_add(1);
                  return Status::OK();
                }).ok());
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsOk) {
  bool called = false;
  EXPECT_TRUE(ParallelFor(0, 8, [&](uint64_t) {
                called = true;
                return Status::OK();
              }).ok());
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ReportsSmallestFailingIndex) {
  for (uint32_t par : {1u, 4u}) {
    Status s = ParallelFor(100, par, [&](uint64_t i) -> Status {
      if (i == 97 || i == 23 || i == 60) {
        return Status::Internal("fail " + std::to_string(i));
      }
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find("fail 23"), std::string::npos) << s;
  }
}

TEST(ParallelFor, AllIterationsRunDespiteFailures) {
  std::atomic<int> ran{0};
  Status s = ParallelFor(64, 4, [&](uint64_t i) -> Status {
    ran.fetch_add(1);
    return i % 2 == 0 ? Status::Internal("even") : Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ran.load(), 64);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // A ParallelFor inside a pool task must not wait on its own queue.
  std::atomic<int> total{0};
  ASSERT_TRUE(ParallelFor(8, 4, [&](uint64_t) {
                return ParallelFor(8, 4, [&](uint64_t) {
                  total.fetch_add(1);
                  return Status::OK();
                });
              }).ok());
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, ParallelismLargerThanPoolStillCompletes) {
  std::atomic<int> total{0};
  ASSERT_TRUE(ParallelFor(1000, 64, [&](uint64_t) {
                total.fetch_add(1);
                return Status::OK();
              }).ok());
  EXPECT_EQ(total.load(), 1000);
}

TEST(EffectiveParallelism, ZeroMeansHardware) {
  EXPECT_GE(EffectiveParallelism(0), 1u);
  EXPECT_EQ(EffectiveParallelism(3), 3u);
}

}  // namespace
}  // namespace runtime
}  // namespace isla
