// Unit tests for core/time_budget.h — time-constrained execution (§VII-F)
// — plus a statistical-coverage harness (tests/coverage_test.cc style) for
// the derived precision contract: the (achieved_precision, β) pair the
// budget run *reports* must hold against ground truth.

#include <gtest/gtest.h>

#include <cmath>

#include "core/time_budget.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

TEST(TimeBudget, ProducesAnswerAndContract) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 1);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto r = AggregateWithTimeBudget(*ds->data(), /*budget_millis=*/200.0, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->achieved_precision, 0.0);
  EXPECT_GT(r->budget_samples, 0u);
  EXPECT_GT(r->probe_rate, 0.0);
  // The answer must respect the precision the budget affords (loosely; the
  // contract is probabilistic).
  EXPECT_NEAR(r->aggregate.average, 100.0, 4.0 * r->achieved_precision + 0.1);
}

TEST(TimeBudget, BiggerBudgetTightensPrecision) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto small = AggregateWithTimeBudget(*ds->data(), 50.0, o);
  auto large = AggregateWithTimeBudget(*ds->data(), 2000.0, o);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(large->achieved_precision, small->achieved_precision);
  EXPECT_GT(large->budget_samples, small->budget_samples);
}

TEST(TimeBudget, RejectsNonPositiveBudget) {
  auto ds = workload::MakeNormalDataset(1'000'000, 2, 100.0, 20.0, 3);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  EXPECT_TRUE(AggregateWithTimeBudget(*ds->data(), 0.0, o)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AggregateWithTimeBudget(*ds->data(), -5.0, o)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimeBudget, EmptyColumnFails) {
  storage::Column empty("v");
  IslaOptions o;
  EXPECT_TRUE(AggregateWithTimeBudget(empty, 100.0, o)
                  .status()
                  .IsFailedPrecondition());
}

TEST(TimeBudget, SamplesClampedToPopulation) {
  auto ds = workload::MakeNormalDataset(10'000, 2, 100.0, 20.0, 4);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto r = AggregateWithTimeBudget(*ds->data(), 10'000.0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->budget_samples, 10'000u);
}

TEST(TimeBudget, SeedSaltDecorrelatesRuns) {
  // Two runs with different salts must not replay the same sample stream
  // (the probe differs, so the answers almost surely differ); the same
  // salt must at least draw the same budget-independent pilot streams.
  auto ds = workload::MakeMaterializedNormalDataset(100'000, 4, 100.0, 20.0,
                                                    5);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto a = AggregateWithTimeBudget(*ds->data(), 100.0, o, /*seed_salt=*/1);
  auto b = AggregateWithTimeBudget(*ds->data(), 100.0, o, /*seed_salt=*/2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->aggregate.average, b->aggregate.average);
}

// ---------------------------------------------------------------------------
// Statistical coverage of the derived contract (coverage_test.cc harness
// style). achieved_precision differs run to run — it is derived from the
// measured probe rate — so each run is graded against its *own* reported
// band: |answer − truth| ≤ 2·achieved_precision (the engine's empirical
// 2e contract), with aggregate coverage ≥ β − 3·σ_binomial.
// ---------------------------------------------------------------------------

TEST(TimeBudgetCoverage, ReportedPrecisionContractHolds) {
  constexpr int kRuns = 100;
  constexpr double kBeta = 0.95;
  const double floor =
      kBeta - 3.0 * std::sqrt(kBeta * (1.0 - kBeta) / kRuns);

  auto ds = workload::MakeMaterializedNormalDataset(200'000, 4, 100.0, 20.0,
                                                    77);
  ASSERT_TRUE(ds.ok());
  const double exact = ds->true_mean;

  int covered = 0;
  for (int i = 0; i < kRuns; ++i) {
    IslaOptions options;
    options.confidence = kBeta;
    auto r = AggregateWithTimeBudget(*ds->data(), /*budget_millis=*/25.0,
                                     options,
                                     /*seed_salt=*/9000 + i);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_GT(r->achieved_precision, 0.0);
    EXPECT_GT(r->budget_samples, 0u);
    if (std::abs(r->aggregate.average - exact) <=
        2.0 * r->achieved_precision) {
      ++covered;
    }
  }
  double coverage = static_cast<double>(covered) / kRuns;
  EXPECT_GE(coverage, floor)
      << covered << "/" << kRuns
      << " runs inside their own reported 2e band";
}

}  // namespace
}  // namespace core
}  // namespace isla
