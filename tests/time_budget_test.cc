// Unit tests for core/time_budget.h — time-constrained execution (§VII-F).

#include <gtest/gtest.h>

#include "core/time_budget.h"
#include "workload/datasets.h"

namespace isla {
namespace core {
namespace {

TEST(TimeBudget, ProducesAnswerAndContract) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 1);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto r = AggregateWithTimeBudget(*ds->data(), /*budget_millis=*/200.0, o);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->achieved_precision, 0.0);
  EXPECT_GT(r->budget_samples, 0u);
  EXPECT_GT(r->probe_rate, 0.0);
  // The answer must respect the precision the budget affords (loosely; the
  // contract is probabilistic).
  EXPECT_NEAR(r->aggregate.average, 100.0, 4.0 * r->achieved_precision + 0.1);
}

TEST(TimeBudget, BiggerBudgetTightensPrecision) {
  auto ds = workload::MakeNormalDataset(100'000'000, 5, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto small = AggregateWithTimeBudget(*ds->data(), 50.0, o);
  auto large = AggregateWithTimeBudget(*ds->data(), 2000.0, o);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(large->achieved_precision, small->achieved_precision);
  EXPECT_GT(large->budget_samples, small->budget_samples);
}

TEST(TimeBudget, RejectsNonPositiveBudget) {
  auto ds = workload::MakeNormalDataset(1'000'000, 2, 100.0, 20.0, 3);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  EXPECT_TRUE(AggregateWithTimeBudget(*ds->data(), 0.0, o)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(AggregateWithTimeBudget(*ds->data(), -5.0, o)
                  .status()
                  .IsInvalidArgument());
}

TEST(TimeBudget, EmptyColumnFails) {
  storage::Column empty("v");
  IslaOptions o;
  EXPECT_TRUE(AggregateWithTimeBudget(empty, 100.0, o)
                  .status()
                  .IsFailedPrecondition());
}

TEST(TimeBudget, SamplesClampedToPopulation) {
  auto ds = workload::MakeNormalDataset(10'000, 2, 100.0, 20.0, 4);
  ASSERT_TRUE(ds.ok());
  IslaOptions o;
  auto r = AggregateWithTimeBudget(*ds->data(), 10'000.0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->budget_samples, 10'000u);
}

}  // namespace
}  // namespace core
}  // namespace isla
