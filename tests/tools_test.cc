// Integration tests for the command-line tools: isla_shell (driven through
// a pipe), isla_import (via system()), and the isla_serverd/isla_client
// network pair (daemons started in the background on ephemeral ports).
// These exercise the binaries end to end, the way a user would.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "storage/file_block.h"

namespace isla {
namespace {

namespace fs = std::filesystem;

/// Locates a tool binary relative to the test binary's build tree.
std::string ToolPath(const std::string& name) {
  // Tests run from build/tests/<test>; tools live in build/tools/.
  fs::path candidates[] = {
      fs::path("tools") / name,
      fs::path("..") / "tools" / name,
      fs::path("build") / "tools" / name,
  };
  for (const auto& c : candidates) {
    if (fs::exists(c)) return c.string();
  }
  return name;  // Hope it's on PATH.
}

/// Runs `command`, feeding `input` on stdin, returning captured stdout.
std::string RunWithInput(const std::string& command,
                         const std::string& input) {
  fs::path dir = fs::temp_directory_path();
  fs::path in_file = dir / ("isla_tool_in_" + std::to_string(::getpid()));
  fs::path out_file = dir / ("isla_tool_out_" + std::to_string(::getpid()));
  std::ofstream(in_file) << input;
  std::string full = command + " < " + in_file.string() + " > " +
                     out_file.string() + " 2>&1";
  int rc = std::system(full.c_str());
  (void)rc;
  std::ifstream out(out_file);
  std::string captured((std::istreambuf_iterator<char>(out)),
                       std::istreambuf_iterator<char>());
  fs::remove(in_file);
  fs::remove(out_file);
  return captured;
}

TEST(IslaShell, CreateQueryDescribeRoundTrip) {
  std::string out = RunWithInput(
      ToolPath("isla_shell"),
      "CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4\n"
      "SELECT AVG(value) FROM s WITHIN 0.5\n"
      "SHOW TABLES\n"
      "quit\n");
  EXPECT_NE(out.find("created table s"), std::string::npos) << out;
  EXPECT_NE(out.find("AVG = "), std::string::npos) << out;
  EXPECT_NE(out.find("method=isla"), std::string::npos) << out;
}

TEST(IslaShell, ErrorsAreReportedNotFatal) {
  std::string out = RunWithInput(ToolPath("isla_shell"),
                                 "SELECT AVG(value) FROM ghost\n"
                                 "SHOW TABLES\n");
  EXPECT_NE(out.find("error: NotFound"), std::string::npos) << out;
  EXPECT_NE(out.find("(no tables)"), std::string::npos) << out;
}

TEST(IslaImport, ConvertsTextAndShellReadsIt) {
  fs::path dir = fs::temp_directory_path() / "isla_tools_test";
  fs::create_directories(dir);
  fs::path txt = dir / "col.txt";
  std::ofstream(txt) << "2\n4\n6\n8\n";

  std::string import_out =
      RunWithInput(ToolPath("isla_import") + " " + txt.string(), "");
  EXPECT_NE(import_out.find("4 rows"), std::string::npos) << import_out;

  fs::path islb = dir / "col.islb";
  ASSERT_TRUE(fs::exists(islb));

  std::string shell_out = RunWithInput(
      ToolPath("isla_shell"),
      "CREATE TABLE c FROM FILES('" + islb.string() + "')\n"
      "SELECT AVG(value) FROM c USING exact\n");
  EXPECT_NE(shell_out.find("AVG = 5.0000"), std::string::npos) << shell_out;
  fs::remove_all(dir);
}

TEST(IslaImport, FailsCleanlyOnMissingFile) {
  std::string out = RunWithInput(
      "( " + ToolPath("isla_import") + " /nope/missing.txt; echo rc=$? )",
      "");
  EXPECT_NE(out.find("IOError"), std::string::npos) << out;
  EXPECT_NE(out.find("rc=1"), std::string::npos) << out;
}

TEST(IslaShell, SetRetunesSessionDefaults) {
  std::string out = RunWithInput(ToolPath("isla_shell"),
                                 "SET precision 0.5\n"
                                 "SHOW SETTINGS\n"
                                 "SET confidence 42\n"
                                 "quit\n");
  EXPECT_NE(out.find("set precision = 0.5"), std::string::npos) << out;
  EXPECT_NE(out.find("precision = 0.5"), std::string::npos) << out;
  EXPECT_NE(out.find("error: InvalidArgument"), std::string::npos) << out;
}

TEST(FlagParsing, GarbageNumericFlagsAreFatalUsageErrors) {
  // atof/strtoull silently read "abc" as 0 — a daemon would then bind port
  // 0 or a client wait 0 ms, mysteriously. Both tools must instead refuse
  // loudly with exit code 2.
  struct Case {
    const char* tool;
    const char* args;
  };
  const Case cases[] = {
      {"isla_client", "--port abc"},
      {"isla_client", "--port 70000"},
      {"isla_client", "--within 0.5x"},
      {"isla_client", "--wait-millis twelve"},
      {"isla_client", "--expect-shards 2.5"},
      {"isla_serverd", "--port abc"},
      {"isla_serverd", "--parallelism -"},
      {"isla_serverd", "--precision 1e"},
      {"isla_serverd", "--heartbeat-millis 1s"},
  };
  for (const Case& c : cases) {
    std::string out = RunWithInput(
        "( " + ToolPath(c.tool) + " " + c.args + "; echo rc=$? )", "");
    EXPECT_NE(out.find("needs a number"), std::string::npos)
        << c.tool << " " << c.args << ": " << out;
    EXPECT_NE(out.find("rc=2"), std::string::npos)
        << c.tool << " " << c.args << ": " << out;
  }
}

// ---------------------------------------------------------------------------
// isla_serverd / isla_client: the network daemons end to end.
// ---------------------------------------------------------------------------

/// Starts `command` in the background with its stdin held open for
/// `lifetime_seconds` (the daemon exits at stdin EOF) and stdout captured
/// to `stdout_file`. The subshell's own streams are detached from the
/// test process — otherwise ctest waits on the inherited pipe for the
/// daemon's whole lifetime.
void StartDaemon(const std::string& command, const fs::path& stdout_file,
                 int lifetime_seconds) {
  std::string full = "( sleep " + std::to_string(lifetime_seconds) + " | " +
                     command + " > " + stdout_file.string() +
                     " 2>&1 ) < /dev/null > /dev/null 2>&1 &";
  int rc = std::system(full.c_str());
  ASSERT_EQ(rc, 0) << full;
}

/// Polls the daemon's stdout for "listening on 127.0.0.1:PORT" and
/// returns PORT (0 on timeout).
int WaitForPort(const fs::path& stdout_file) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::ifstream in(stdout_file);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    size_t at = content.find("listening on 127.0.0.1:");
    if (at != std::string::npos) {
      return std::atoi(content.c_str() + at + 23);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

TEST(IslaServerd, QueryServerSessionOverTcp) {
  fs::path dir = fs::temp_directory_path() / "isla_serverd_test";
  fs::create_directories(dir);
  fs::path log = dir / "serverd.out";

  StartDaemon(ToolPath("isla_serverd") + " --port 0 --precision 0.4", log,
              20);
  int port = WaitForPort(log);
  ASSERT_GT(port, 0) << "daemon never reported its port";

  std::string out = RunWithInput(
      ToolPath("isla_client") + " --port " + std::to_string(port),
      "CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4\n"
      "SHOW SETTINGS\n"
      "SELECT AVG(value) FROM s\n"
      "quit\n");
  EXPECT_NE(out.find("created table s"), std::string::npos) << out;
  // The daemon's --precision became this session's default.
  EXPECT_NE(out.find("precision = 0.4"), std::string::npos) << out;
  EXPECT_NE(out.find("AVG = "), std::string::npos) << out;
  EXPECT_NE(out.find("bye"), std::string::npos) << out;
  fs::remove_all(dir);
}

TEST(IslaServerd, WorkerDaemonsServeDistributedAvg) {
  fs::path dir = fs::temp_directory_path() / "isla_workerd_test";
  fs::create_directories(dir);

  // Two shards with known means: 2 rows at 10, 2 rows at 30 → AVG 20.
  std::vector<double> shard0 = {10.0, 10.0, 10.0, 10.0};
  std::vector<double> shard1 = {30.0, 30.0, 30.0, 30.0};
  fs::path islb0 = dir / "s0.islb";
  fs::path islb1 = dir / "s1.islb";
  ASSERT_TRUE(storage::WriteBlockFile(islb0.string(), shard0).ok());
  ASSERT_TRUE(storage::WriteBlockFile(islb1.string(), shard1).ok());

  fs::path log0 = dir / "w0.out";
  fs::path log1 = dir / "w1.out";
  StartDaemon(ToolPath("isla_serverd") + " --worker --shard " +
                  islb0.string() + " --worker-id 0 --port 0",
              log0, 20);
  StartDaemon(ToolPath("isla_serverd") + " --worker --shard " +
                  islb1.string() + " --worker-id 1 --port 0",
              log1, 20);
  int port0 = WaitForPort(log0);
  int port1 = WaitForPort(log1);
  ASSERT_GT(port0, 0);
  ASSERT_GT(port1, 0);

  std::string out = RunWithInput(
      ToolPath("isla_client") + " --workers 127.0.0.1:" +
          std::to_string(port0) + ",127.0.0.1:" + std::to_string(port1) +
          " --within 0.5",
      "");
  // Within-shard-constant data: each worker's partial is its exact shard
  // mean, so the row-weighted merge is (4·10 + 4·30)/8 = 20.
  size_t at = out.find("AVG = ");
  ASSERT_NE(at, std::string::npos) << out;
  EXPECT_NEAR(std::strtod(out.c_str() + at + 6, nullptr), 20.0, 0.5) << out;
  EXPECT_NE(out.find("rows=8"), std::string::npos) << out;
  fs::remove_all(dir);
}

TEST(IslaServerd, ReplicaGroupsFailOverPastDeadPreferredReplicas) {
  // The '|' replica syntax with the coordinator-preferred replica of BOTH
  // shards pointing at a dead port (nothing listens on 127.0.0.1:1): the
  // client must fail over to the live replica of each shard and still
  // produce the exact same answer — and report the failovers it took.
  fs::path dir = fs::temp_directory_path() / "isla_replicas_test";
  fs::create_directories(dir);

  std::vector<double> shard0 = {10.0, 10.0, 10.0, 10.0};
  std::vector<double> shard1 = {30.0, 30.0, 30.0, 30.0};
  fs::path islb0 = dir / "s0.islb";
  fs::path islb1 = dir / "s1.islb";
  ASSERT_TRUE(storage::WriteBlockFile(islb0.string(), shard0).ok());
  ASSERT_TRUE(storage::WriteBlockFile(islb1.string(), shard1).ok());

  fs::path log0 = dir / "w0.out";
  fs::path log1 = dir / "w1.out";
  StartDaemon(ToolPath("isla_serverd") + " --worker --shard " +
                  islb0.string() + " --worker-id 0 --port 0",
              log0, 20);
  StartDaemon(ToolPath("isla_serverd") + " --worker --shard " +
                  islb1.string() + " --worker-id 1 --port 0",
              log1, 20);
  int port0 = WaitForPort(log0);
  int port1 = WaitForPort(log1);
  ASSERT_GT(port0, 0);
  ASSERT_GT(port1, 0);

  // Shard 0 prefers its first replica (dead), shard 1 its second (dead).
  std::string out = RunWithInput(
      ToolPath("isla_client") + " --workers '127.0.0.1:1|127.0.0.1:" +
          std::to_string(port0) + ",127.0.0.1:" + std::to_string(port1) +
          "|127.0.0.1:1' --within 0.5",
      "");
  size_t at = out.find("AVG = ");
  ASSERT_NE(at, std::string::npos) << out;
  EXPECT_NEAR(std::strtod(out.c_str() + at + 6, nullptr), 20.0, 0.5) << out;
  size_t fo = out.find("failovers=");
  ASSERT_NE(fo, std::string::npos) << out;
  EXPECT_GT(std::atoi(out.c_str() + fo + 10), 0) << out;
  EXPECT_NE(out.find("exhausted=0"), std::string::npos) << out;
  fs::remove_all(dir);
}

}  // namespace
}  // namespace isla
