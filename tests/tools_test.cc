// Integration tests for the command-line tools: isla_shell (driven through
// a pipe) and isla_import (via system()). These exercise the binaries end
// to end, the way a user would.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace isla {
namespace {

namespace fs = std::filesystem;

/// Locates a tool binary relative to the test binary's build tree.
std::string ToolPath(const std::string& name) {
  // Tests run from build/tests/<test>; tools live in build/tools/.
  fs::path candidates[] = {
      fs::path("tools") / name,
      fs::path("..") / "tools" / name,
      fs::path("build") / "tools" / name,
  };
  for (const auto& c : candidates) {
    if (fs::exists(c)) return c.string();
  }
  return name;  // Hope it's on PATH.
}

/// Runs `command`, feeding `input` on stdin, returning captured stdout.
std::string RunWithInput(const std::string& command,
                         const std::string& input) {
  fs::path dir = fs::temp_directory_path();
  fs::path in_file = dir / ("isla_tool_in_" + std::to_string(::getpid()));
  fs::path out_file = dir / ("isla_tool_out_" + std::to_string(::getpid()));
  std::ofstream(in_file) << input;
  std::string full = command + " < " + in_file.string() + " > " +
                     out_file.string() + " 2>&1";
  int rc = std::system(full.c_str());
  (void)rc;
  std::ifstream out(out_file);
  std::string captured((std::istreambuf_iterator<char>(out)),
                       std::istreambuf_iterator<char>());
  fs::remove(in_file);
  fs::remove(out_file);
  return captured;
}

TEST(IslaShell, CreateQueryDescribeRoundTrip) {
  std::string out = RunWithInput(
      ToolPath("isla_shell"),
      "CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e6 BLOCKS 4\n"
      "SELECT AVG(value) FROM s WITHIN 0.5\n"
      "SHOW TABLES\n"
      "quit\n");
  EXPECT_NE(out.find("created table s"), std::string::npos) << out;
  EXPECT_NE(out.find("AVG = "), std::string::npos) << out;
  EXPECT_NE(out.find("method=isla"), std::string::npos) << out;
}

TEST(IslaShell, ErrorsAreReportedNotFatal) {
  std::string out = RunWithInput(ToolPath("isla_shell"),
                                 "SELECT AVG(value) FROM ghost\n"
                                 "SHOW TABLES\n");
  EXPECT_NE(out.find("error: NotFound"), std::string::npos) << out;
  EXPECT_NE(out.find("(no tables)"), std::string::npos) << out;
}

TEST(IslaImport, ConvertsTextAndShellReadsIt) {
  fs::path dir = fs::temp_directory_path() / "isla_tools_test";
  fs::create_directories(dir);
  fs::path txt = dir / "col.txt";
  std::ofstream(txt) << "2\n4\n6\n8\n";

  std::string import_out =
      RunWithInput(ToolPath("isla_import") + " " + txt.string(), "");
  EXPECT_NE(import_out.find("4 rows"), std::string::npos) << import_out;

  fs::path islb = dir / "col.islb";
  ASSERT_TRUE(fs::exists(islb));

  std::string shell_out = RunWithInput(
      ToolPath("isla_shell"),
      "CREATE TABLE c FROM FILES('" + islb.string() + "')\n"
      "SELECT AVG(value) FROM c USING exact\n");
  EXPECT_NE(shell_out.find("AVG = 5.0000"), std::string::npos) << shell_out;
  fs::remove_all(dir);
}

TEST(IslaImport, FailsCleanlyOnMissingFile) {
  std::string out = RunWithInput(
      "( " + ToolPath("isla_import") + " /nope/missing.txt; echo rc=$? )",
      "");
  EXPECT_NE(out.find("IOError"), std::string::npos) << out;
  EXPECT_NE(out.find("rc=1"), std::string::npos) << out;
}

}  // namespace
}  // namespace isla
