// Golden wire-format suite: the exact serialized bytes of every
// distributed message frame (and of the net transport frame wrapper) are
// pinned against checked-in hex fixtures. The distributed protocol is a
// cross-version compatibility surface — a coordinator built from one
// commit must interoperate with worker daemons built from another — so
// any edit that moves a field, changes a width, or reorders the options
// block fails here *loudly* instead of silently producing garbage on
// mixed-version clusters.
//
// If a test fails because the format changed ON PURPOSE, bump the
// protocol semantics deliberately: update the fixture from the printed
// actual bytes AND treat the change as a wire-format break (old daemons
// cannot talk to new coordinators).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "distributed/message.h"
#include "stats/sketch.h"
#include "net/frame.h"
#include "net/partial.h"

namespace isla {
namespace distributed {
namespace {

std::string ToHex(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  char buf[3];
  for (unsigned char c : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", c);
    out += buf;
  }
  return out;
}

/// EXPECT helper: on mismatch the actual hex is printed ready to paste.
void ExpectGolden(const std::string& frame, const std::string& golden_hex,
                  const char* what) {
  EXPECT_EQ(ToHex(frame), golden_hex)
      << what << " wire format changed; actual bytes:\n"
      << ToHex(frame);
}

// ---------------------------------------------------------------------------
// Fixtures. One representative message per frame type, every field set to
// a distinctive value so a swapped pair of fields cannot cancel out.
// ---------------------------------------------------------------------------

PilotRequest GoldenPilotRequest() {
  PilotRequest m;
  m.query_id = 7;
  m.sample_count = 1000;
  m.seed = 42;
  return m;
}
constexpr char kPilotRequestHex[] =
    "010000000700000000000000e8030000000000002a00000000000000";

PilotResponse GoldenPilotResponse() {
  PilotResponse m;
  m.query_id = 7;
  m.worker_id = 3;
  m.block_rows = 1'000'000;
  m.count = 500;
  m.mean = 100.25;
  m.m2 = 1234.5;
  m.min_value = -3.5;
  return m;
}
constexpr char kPilotResponseHex[] =
    "020000000700000000000000030000000000000040420f0000000000f4010000"
    "00000000000000000010594000000000004a93400000000000000cc0";

QueryPlan GoldenQueryPlan() {
  QueryPlan m;  // options stay at IslaOptions defaults: they are part of
  m.query_id = 7;  // the pinned bytes, so a default change fails here too.
  m.sample_count = 4242;
  m.seed = 99;
  m.sketch0 = 101.5;
  m.sigma = 19.75;
  m.shift = 250.0;
  return m;
}
constexpr char kQueryPlanHex[] =
    "0300000007000000000000009210000000000000630000000000000000000000"
    "006059400000000000c033400000000000406f409a9999999999b93f66666666"
    "6666ee3f0000000000000840000000000000e03f00000000000000409a999999"
    "9999e93f000000000000e03f00000000000000007b14ae47e17a843fae47e17a"
    "14aeef3f295c8fc2f528f03f0ad7a3703d0aef3f7b14ae47e17af03f14ae47e1"
    "7a14ee3ff6285c8fc2f5f03f0000000000001440000000000000244001000000"
    "00000000e8030000000000005aa1155a01000000000000000000f03f00000000"
    "00000000";

PartialResult GoldenPartialResult() {
  PartialResult m;
  m.query_id = 7;
  m.worker_id = 3;
  m.block_rows = 1'000'000;
  m.samples_drawn = 4242;
  m.avg = 100.125;
  m.s_count = 10;
  m.l_count = 12;
  m.iterations = 8;
  m.alpha = -0.25;
  m.s_sum = 1.5;
  m.s_sum2 = 2.5;
  m.s_sum3 = 3.5;
  m.l_sum = 4.5;
  m.l_sum2 = 5.5;
  m.l_sum3 = 6.5;
  return m;
}
constexpr char kPartialResultHex[] =
    "040000000700000000000000030000000000000040420f000000000092100000"
    "0000000000000000000859400a000000000000000c0000000000000008000000"
    "00000000000000000000d0bf000000000000f83f000000000000044000000000"
    "00000c40000000000000124000000000000016400000000000001a40";

GroupedScanRequest GoldenGroupedScanRequest() {
  GroupedScanRequest m;
  m.query_id = 11;
  m.sample_count = 4096;
  m.stream_seed = 0xabcdef;
  m.has_predicate = 1;
  m.op = core::PredicateOp::kLe;
  m.literal = -12.5;
  m.has_group = 1;
  return m;
}
constexpr char kGroupedScanRequestHex[] =
    "050000000b000000000000000010000000000000efcdab000000000001000000"
    "00000000030000000000000000000000000029c00100000000000000";

GroupedScanResponse GoldenGroupedScanResponse() {
  GroupedScanResponse m;
  m.query_id = 11;
  m.worker_id = 2;
  m.partial.block_rows = 1000;
  m.partial.scanned = 500;
  for (double v : {1.0, 2.0, 3.0}) m.partial.all.Add(v);
  for (double v : {1.0, 3.0}) m.partial.groups[0.0].Add(v);
  m.partial.groups[7.5].Add(2.0);
  return m;
}
constexpr char kGroupedScanResponseHex[] =
    "060000000b000000000000000200000000000000e803000000000000f4010000"
    "0000000003000000000000000000000000000040000000000000004002000000"
    "0000000000000000000000000200000000000000000000000000004000000000"
    "000000400000000000001e400100000000000000000000000000004000000000"
    "00000000";

SketchScanRequest GoldenSketchScanRequest() {
  SketchScanRequest m;
  m.scan.query_id = 13;
  m.scan.sample_count = 2048;
  m.scan.stream_seed = 0xfedcba;
  m.scan.has_predicate = 1;
  m.scan.op = core::PredicateOp::kGt;
  m.scan.literal = 6.25;
  m.scan.has_group = 1;
  return m;
}
constexpr char kSketchScanRequestHex[] =
    "0a0000000d000000000000000008000000000000badcfe000000000001000000"
    "00000000040000000000000000000000000019400100000000000000";

SketchScanResponse GoldenSketchScanResponse() {
  SketchScanResponse m;
  m.query_id = 13;
  m.worker_id = 2;
  m.partial.block_rows = 1000;
  m.partial.scanned = 500;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) m.partial.all.Add(v);
  for (double v : {1.0, 3.0, 5.0}) m.partial.groups[0.0].Add(v);
  for (double v : {2.0, 4.0}) m.partial.groups[7.5].Add(v);
  // Tiny capacity so the fixture exercises a compacted level with a
  // flipped parity — the state a real per-block sketch ships mid-query.
  stats::QuantileSketch a(4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) a.Add(v);
  stats::QuantileSketch b(4);
  for (double v : {2.0, 4.0}) b.Add(v);
  m.partial.sketches.emplace(0.0, std::move(a));
  m.partial.sketches.emplace(7.5, std::move(b));
  return m;
}
constexpr char kSketchScanResponseHex[] =
    "0b0000000d000000000000000200000000000000e803000000000000f4010000"
    "0000000005000000000000000000000000000840000000000000244002000000"
    "0000000000000000000000000300000000000000000000000000084000000000"
    "000020400000000000001e400200000000000000000000000000084000000000"
    "0000004002000000000000000000000000000000040000000000000005000000"
    "00000000000000000000f03f0000000000001440010000000000000002000000"
    "0000000001000000000000000100000000000000000000000000144000000000"
    "000000000200000000000000000000000000f03f000000000000084000000000"
    "00001e4004000000000000000200000000000000000000000000004000000000"
    "0000104000000000000000000100000000000000000000000000000002000000"
    "0000000000000000000000400000000000001040";

RegisterFrame GoldenRegisterFrame() {
  RegisterFrame m;
  m.shard_id = 3;
  m.port = 7101;
  m.block_rows = 25'000;
  m.fingerprint = 0x1122334455667788;
  m.host = "10.0.0.7";
  return m;
}
constexpr char kRegisterFrameHex[] =
    "080000000300000000000000bd1b000000000000a86100000000000088776655"
    "44332211080000000000000031302e302e302e37";

RegisterAck GoldenRegisterAck() {
  RegisterAck m;
  m.shard_id = 3;
  m.accepted = 1;
  m.known_shards = 4;
  m.epoch = 5;
  return m;
}
constexpr char kRegisterAckHex[] =
    "0900000003000000000000000100000000000000000000000000000004000000"
    "000000000500000000000000";

RegisterAck GoldenRefusalAck() {
  RegisterAck m;
  m.shard_id = 3;
  m.accepted = 0;
  m.reason = static_cast<uint64_t>(RegisterRefusal::kFingerprintMismatch);
  m.known_shards = 4;
  m.epoch = 7;
  return m;
}
constexpr char kRefusalAckHex[] =
    "0900000003000000000000000000000000000000010000000000000004000000"
    "000000000700000000000000";

ShardFetchRequest GoldenShardFetchRequest() {
  ShardFetchRequest m;
  m.shard_id = 3;
  m.column = kShardColumnPredicate;
  m.start_row = 4096;
  m.max_rows = 512;
  return m;
}
constexpr char kShardFetchRequestHex[] =
    "0c00000003000000000000000100000000000000001000000000000000020000"
    "00000000";

ShardBlockChunk GoldenShardBlockChunk() {
  ShardBlockChunk m;
  m.shard_id = 3;
  m.column = kShardColumnValues;
  m.column_present = 1;
  m.total_rows = 100;
  m.start_row = 8;
  m.rows = {1.5, -2.25, 64.0};
  m.crc = 0x5cb64106;  // Crc32 of the three rows' raw f64 bytes.
  return m;
}
constexpr char kShardBlockChunkHex[] =
    "0d00000003000000000000000000000000000000010000000000000064000000"
    "0000000008000000000000000641b65c00000000030000000000000000000000"
    "0000f83f00000000000002c00000000000005040";

ErrorFrame GoldenErrorFrame() {
  ErrorFrame m;
  m.code = 7;  // FailedPrecondition
  m.message = "worker has no group column shard";
  return m;
}
constexpr char kErrorFrameHex[] =
    "0700000007000000000000002000000000000000776f726b657220686173206e"
    "6f2067726f757020636f6c756d6e207368617264";

// ---------------------------------------------------------------------------
// Encode: exact bytes.
// ---------------------------------------------------------------------------

TEST(WireFormat, PilotRequest) {
  ExpectGolden(Encode(GoldenPilotRequest()), kPilotRequestHex,
               "PilotRequest");
}

TEST(WireFormat, PilotResponse) {
  ExpectGolden(Encode(GoldenPilotResponse()), kPilotResponseHex,
               "PilotResponse");
}

TEST(WireFormat, QueryPlan) {
  ExpectGolden(Encode(GoldenQueryPlan()), kQueryPlanHex, "QueryPlan");
}

TEST(WireFormat, PartialResult) {
  ExpectGolden(Encode(GoldenPartialResult()), kPartialResultHex,
               "PartialResult");
}

TEST(WireFormat, GroupedScanRequest) {
  ExpectGolden(Encode(GoldenGroupedScanRequest()), kGroupedScanRequestHex,
               "GroupedScanRequest");
}

TEST(WireFormat, GroupedScanResponse) {
  ExpectGolden(Encode(GoldenGroupedScanResponse()),
               kGroupedScanResponseHex, "GroupedScanResponse");
}

TEST(WireFormat, SketchScanRequest) {
  ExpectGolden(Encode(GoldenSketchScanRequest()), kSketchScanRequestHex,
               "SketchScanRequest");
}

TEST(WireFormat, SketchScanResponse) {
  ExpectGolden(Encode(GoldenSketchScanResponse()),
               kSketchScanResponseHex, "SketchScanResponse");
}

TEST(WireFormat, ErrorFrame) {
  ExpectGolden(Encode(GoldenErrorFrame()), kErrorFrameHex, "ErrorFrame");
}

TEST(WireFormat, RegisterFrame) {
  ExpectGolden(Encode(GoldenRegisterFrame()), kRegisterFrameHex,
               "RegisterFrame");
}

TEST(WireFormat, RegisterAck) {
  ExpectGolden(Encode(GoldenRegisterAck()), kRegisterAckHex, "RegisterAck");
}

TEST(WireFormat, RefusalRegisterAck) {
  ExpectGolden(Encode(GoldenRefusalAck()), kRefusalAckHex,
               "RegisterAck (refusal)");
}

TEST(WireFormat, ShardFetchRequest) {
  ExpectGolden(Encode(GoldenShardFetchRequest()), kShardFetchRequestHex,
               "ShardFetchRequest");
}

TEST(WireFormat, ShardBlockChunk) {
  ExpectGolden(Encode(GoldenShardBlockChunk()), kShardBlockChunkHex,
               "ShardBlockChunk");
}

// ---------------------------------------------------------------------------
// Decode: the checked-in bytes (as an old peer would send them) must
// reproduce the message, field by field — encode symmetry alone would not
// catch a change that breaks decoding of *old* frames.
// ---------------------------------------------------------------------------

std::string FromHex(const std::string& hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(WireFormat, DecodesPinnedPilotResponse) {
  auto m = DecodePilotResponse(FromHex(kPilotResponseHex));
  ASSERT_TRUE(m.ok()) << m.status();
  PilotResponse want = GoldenPilotResponse();
  EXPECT_EQ(m->query_id, want.query_id);
  EXPECT_EQ(m->worker_id, want.worker_id);
  EXPECT_EQ(m->block_rows, want.block_rows);
  EXPECT_EQ(m->count, want.count);
  EXPECT_EQ(m->mean, want.mean);
  EXPECT_EQ(m->m2, want.m2);
  EXPECT_EQ(m->min_value, want.min_value);
}

TEST(WireFormat, DecodesPinnedQueryPlan) {
  auto m = DecodeQueryPlan(FromHex(kQueryPlanHex));
  ASSERT_TRUE(m.ok()) << m.status();
  QueryPlan want = GoldenQueryPlan();
  EXPECT_EQ(m->sample_count, want.sample_count);
  EXPECT_EQ(m->sketch0, want.sketch0);
  EXPECT_EQ(m->sigma, want.sigma);
  EXPECT_EQ(m->shift, want.shift);
  EXPECT_EQ(m->options.precision, want.options.precision);
  EXPECT_EQ(m->options.confidence, want.options.confidence);
  EXPECT_EQ(m->options.q_prime_severe, want.options.q_prime_severe);
  EXPECT_EQ(m->options.seed, want.options.seed);
  EXPECT_EQ(m->options.parallelism, want.options.parallelism);
}

TEST(WireFormat, DecodesPinnedGroupedScanResponse) {
  auto m = DecodeGroupedScanResponse(FromHex(kGroupedScanResponseHex));
  ASSERT_TRUE(m.ok()) << m.status();
  GroupedScanResponse want = GoldenGroupedScanResponse();
  EXPECT_EQ(m->partial.block_rows, want.partial.block_rows);
  EXPECT_EQ(m->partial.scanned, want.partial.scanned);
  EXPECT_EQ(m->partial.all.n, want.partial.all.n);
  EXPECT_EQ(m->partial.all.mean, want.partial.all.mean);
  EXPECT_EQ(m->partial.all.m2, want.partial.all.m2);
  ASSERT_EQ(m->partial.groups.size(), want.partial.groups.size());
  EXPECT_EQ(m->partial.groups.at(0.0).n, 2u);
  EXPECT_EQ(m->partial.groups.at(7.5).mean, 2.0);
}

TEST(WireFormat, DecodesPinnedSketchScanRequest) {
  auto m = DecodeSketchScanRequest(FromHex(kSketchScanRequestHex));
  ASSERT_TRUE(m.ok()) << m.status();
  SketchScanRequest want = GoldenSketchScanRequest();
  EXPECT_EQ(m->scan.query_id, want.scan.query_id);
  EXPECT_EQ(m->scan.sample_count, want.scan.sample_count);
  EXPECT_EQ(m->scan.stream_seed, want.scan.stream_seed);
  EXPECT_EQ(m->scan.has_predicate, want.scan.has_predicate);
  EXPECT_EQ(m->scan.op, want.scan.op);
  EXPECT_EQ(m->scan.literal, want.scan.literal);
  EXPECT_EQ(m->scan.has_group, want.scan.has_group);
}

TEST(WireFormat, DecodesPinnedSketchScanResponse) {
  auto m = DecodeSketchScanResponse(FromHex(kSketchScanResponseHex));
  ASSERT_TRUE(m.ok()) << m.status();
  SketchScanResponse want = GoldenSketchScanResponse();
  EXPECT_EQ(m->query_id, want.query_id);
  EXPECT_EQ(m->worker_id, want.worker_id);
  EXPECT_EQ(m->partial.block_rows, want.partial.block_rows);
  EXPECT_EQ(m->partial.scanned, want.partial.scanned);
  ASSERT_EQ(m->partial.groups.size(), want.partial.groups.size());
  ASSERT_EQ(m->partial.sketches.size(), want.partial.sketches.size());
  for (const auto& [key, ws] : want.partial.sketches) {
    const auto it = m->partial.sketches.find(key);
    ASSERT_NE(it, m->partial.sketches.end()) << "missing sketch " << key;
    const stats::QuantileSketch& ds = it->second;
    EXPECT_EQ(ds.capacity(), ws.capacity());
    EXPECT_EQ(ds.count(), ws.count());
    EXPECT_EQ(ds.min(), ws.min());
    EXPECT_EQ(ds.max(), ws.max());
    EXPECT_EQ(ds.error_weight(), ws.error_weight());
    ASSERT_EQ(ds.num_levels(), ws.num_levels());
    for (size_t l = 0; l < ws.num_levels(); ++l) {
      EXPECT_EQ(ds.level_parity(l), ws.level_parity(l)) << "level " << l;
      EXPECT_EQ(ds.level(l), ws.level(l)) << "level " << l;
    }
  }
}

TEST(WireFormat, SketchScanResponseRejectsDamage) {
  const std::string frame = FromHex(kSketchScanResponseHex);
  EXPECT_TRUE(DecodeSketchScanResponse(frame.substr(0, frame.size() - 1))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(
      DecodeSketchScanResponse(frame + "x").status().IsCorruption());
  // A parity outside {0,1} must be refused: it would silently desync the
  // deterministic compaction schedule on merge.
  std::string bad_parity = frame;
  bool flipped = false;
  for (size_t i = 0; i + 16 <= bad_parity.size() && !flipped; ++i) {
    // Locate the first per-level header (parity u64 = 1, size u64 = 1)
    // of the key-0.0 sketch: parity 1 followed by size 1.
    if (static_cast<unsigned char>(bad_parity[i]) == 1 &&
        bad_parity.compare(i + 1, 7, std::string(7, '\0')) == 0 &&
        static_cast<unsigned char>(bad_parity[i + 8]) == 1 &&
        bad_parity.compare(i + 9, 7, std::string(7, '\0')) == 0) {
      bad_parity[i] = 2;
      flipped = true;
    }
  }
  ASSERT_TRUE(flipped);
  EXPECT_TRUE(DecodeSketchScanResponse(bad_parity).status().IsCorruption());
}

TEST(WireFormat, DecodesPinnedErrorFrame) {
  auto m = DecodeErrorFrame(FromHex(kErrorFrameHex));
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->ToStatus().IsFailedPrecondition());
  EXPECT_EQ(m->message, "worker has no group column shard");
}

TEST(WireFormat, DecodesPinnedRegisterFrame) {
  auto m = DecodeRegisterFrame(FromHex(kRegisterFrameHex));
  ASSERT_TRUE(m.ok()) << m.status();
  RegisterFrame want = GoldenRegisterFrame();
  EXPECT_EQ(m->shard_id, want.shard_id);
  EXPECT_EQ(m->port, want.port);
  EXPECT_EQ(m->block_rows, want.block_rows);
  EXPECT_EQ(m->fingerprint, want.fingerprint);
  EXPECT_EQ(m->host, want.host);
}

TEST(WireFormat, DecodesPinnedRegisterAck) {
  auto m = DecodeRegisterAck(FromHex(kRegisterAckHex));
  ASSERT_TRUE(m.ok()) << m.status();
  RegisterAck want = GoldenRegisterAck();
  EXPECT_EQ(m->shard_id, want.shard_id);
  EXPECT_EQ(m->accepted, want.accepted);
  EXPECT_EQ(m->reason, want.reason);
  EXPECT_EQ(m->known_shards, want.known_shards);
  EXPECT_EQ(m->epoch, want.epoch);
}

TEST(WireFormat, DecodesPinnedRefusalAck) {
  auto m = DecodeRegisterAck(FromHex(kRefusalAckHex));
  ASSERT_TRUE(m.ok()) << m.status();
  RegisterAck want = GoldenRefusalAck();
  EXPECT_EQ(m->accepted, 0u);
  EXPECT_EQ(m->reason, want.reason);
  EXPECT_EQ(m->epoch, want.epoch);
}

TEST(WireFormat, RegisterAckRejectsDamage) {
  std::string frame = FromHex(kRegisterAckHex);
  EXPECT_FALSE(DecodeRegisterAck(frame.substr(0, frame.size() - 1)).ok());
  EXPECT_FALSE(DecodeRegisterAck(frame + "x").ok());
  // A refusal reason out of the typed range must be refused, not mapped
  // onto some arbitrary enum value the worker then misreports.
  std::string bad_reason = frame;
  bad_reason[20] = 99;
  EXPECT_FALSE(DecodeRegisterAck(bad_reason).ok());
  // accepted=1 with a non-zero refusal reason is self-contradictory.
  std::string contradicting = frame;
  contradicting[20] = 1;
  EXPECT_FALSE(DecodeRegisterAck(contradicting).ok());
}

TEST(WireFormat, DecodesPinnedShardFetchRequest) {
  auto m = DecodeShardFetchRequest(FromHex(kShardFetchRequestHex));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardFetchRequest want = GoldenShardFetchRequest();
  EXPECT_EQ(m->shard_id, want.shard_id);
  EXPECT_EQ(m->column, want.column);
  EXPECT_EQ(m->start_row, want.start_row);
  EXPECT_EQ(m->max_rows, want.max_rows);
}

TEST(WireFormat, ShardFetchRequestRejectsDamage) {
  std::string frame = FromHex(kShardFetchRequestHex);
  EXPECT_FALSE(
      DecodeShardFetchRequest(frame.substr(0, frame.size() - 1)).ok());
  EXPECT_FALSE(DecodeShardFetchRequest(frame + "x").ok());
  std::string bad_column = frame;
  bad_column[12] = 9;  // Columns are {values, predicate, keys} only.
  EXPECT_FALSE(DecodeShardFetchRequest(bad_column).ok());
}

TEST(WireFormat, DecodesPinnedShardBlockChunk) {
  auto m = DecodeShardBlockChunk(FromHex(kShardBlockChunkHex));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardBlockChunk want = GoldenShardBlockChunk();
  EXPECT_EQ(m->shard_id, want.shard_id);
  EXPECT_EQ(m->column, want.column);
  EXPECT_EQ(m->column_present, want.column_present);
  EXPECT_EQ(m->total_rows, want.total_rows);
  EXPECT_EQ(m->start_row, want.start_row);
  EXPECT_EQ(m->crc, want.crc);
  EXPECT_EQ(m->rows, want.rows);
}

TEST(WireFormat, ShardBlockChunkRejectsDamage) {
  const std::string frame = FromHex(kShardBlockChunkHex);
  // Truncated mid-payload and oversized frames both fail the exact-length
  // check before any row is trusted.
  EXPECT_TRUE(DecodeShardBlockChunk(frame.substr(0, frame.size() - 1))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeShardBlockChunk(frame + "x").status().IsCorruption());
  // Oversized row_count (beyond kMaxShardChunkRows) must be refused at
  // the header, before the decoder allocates or walks a payload.
  std::string bad_count = frame;
  bad_count[4 + 6 * 8] = '\xff';
  bad_count[4 + 6 * 8 + 1] = '\xff';
  bad_count[4 + 6 * 8 + 2] = '\xff';
  EXPECT_TRUE(DecodeShardBlockChunk(bad_count).status().IsCorruption());
  // A flipped payload bit fails the chunk CRC: a damaged chunk can never
  // land rows in a streamed shard file.
  std::string bad_payload = frame;
  bad_payload[frame.size() - 3] ^= 0x20;
  EXPECT_TRUE(DecodeShardBlockChunk(bad_payload).status().IsCorruption());
  // A chunk reaching past its own block bounds is structural damage even
  // when the CRC matches the rows it carries.
  std::string bad_bounds = frame;
  bad_bounds[4 + 3 * 8] = 9;  // total_rows 100 -> 9 < start_row + rows
  EXPECT_TRUE(DecodeShardBlockChunk(bad_bounds).status().IsCorruption());
}

TEST(WireFormat, RegisterFrameTruncatesOversizedHosts) {
  // Same encoder-side clamp discipline as ErrorFrame: an absurd hostname
  // still produces a decodable (truncated) frame instead of one every
  // registry rejects.
  RegisterFrame big;
  big.shard_id = 1;
  big.port = 7101;
  big.host.assign(3 * kMaxHostBytes, 'h');
  auto decoded = DecodeRegisterFrame(Encode(big));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->host.size(), kMaxHostBytes);
}

TEST(WireFormat, RegisterFrameRejectsDamage) {
  std::string frame = FromHex(kRegisterFrameHex);
  EXPECT_FALSE(DecodeRegisterFrame(frame.substr(0, frame.size() - 1)).ok());
  EXPECT_FALSE(DecodeRegisterFrame(frame + "x").ok());
  std::string bad_port = frame;
  // Zero the port field (bytes 12..19): workers cannot serve on port 0.
  for (size_t i = 12; i < 20; ++i) bad_port[i] = '\0';
  EXPECT_FALSE(DecodeRegisterFrame(bad_port).ok());
}

TEST(WireFormat, ErrorFrameTruncatesOversizedMessages) {
  // The encoder must clamp to the decode cap: a worker failing with a
  // huge Status message still round-trips (truncated), instead of the
  // peer rejecting the frame and masking the real error.
  ErrorFrame big;
  big.code = 5;  // IOError
  big.message.assign(3 * kMaxErrorMessageBytes, 'x');
  auto decoded = DecodeErrorFrame(Encode(big));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->message.size(), kMaxErrorMessageBytes);
  EXPECT_TRUE(decoded->ToStatus().IsIOError());
}

TEST(WireFormat, ErrorFrameRejectsDamage) {
  std::string frame = FromHex(kErrorFrameHex);
  EXPECT_TRUE(DecodeErrorFrame(frame.substr(0, frame.size() - 1))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DecodeErrorFrame(frame + "x").status().IsCorruption());
  std::string bad_code = frame;
  bad_code[4] = 99;  // StatusCode far out of range
  EXPECT_TRUE(DecodeErrorFrame(bad_code).status().IsCorruption());
}

// ---------------------------------------------------------------------------
// The net transport frame wrapper.
// ---------------------------------------------------------------------------

TEST(WireFormat, NetFrameAroundPilotRequest) {
  ExpectGolden(net::EncodeFrame(Encode(GoldenPilotRequest())),
               "49534c461c0000005856b9df010000000700000000000000e8030000"
               "000000002a00000000000000",
               "net frame wrapper");
}

TEST(WireFormat, NetFrameEmptyPayload) {
  // Magic "ISLF", zero length, CRC32 of the empty string (0).
  ExpectGolden(net::EncodeFrame(""), "49534c460000000000000000",
               "net frame (empty)");
}

// ---------------------------------------------------------------------------
// The query-server PARTIAL streaming frame.
// ---------------------------------------------------------------------------

net::PartialFrame GoldenPartialFrame() {
  net::PartialFrame m;
  m.round = 3;
  m.total_rounds = 8;
  m.samples = 12345;
  m.value = 100.25;
  m.ci_half_width = 0.125;
  m.confidence = 0.95;
  return m;
}
// "partial\n" tag, then LE u32 round, u32 total_rounds, u64 samples,
// f64 value, f64 ci_half_width, f64 confidence — 48 bytes total.
constexpr char kPartialFrameHex[] =
    "7061727469616c0a030000000800000039300000000000000000000000105940"
    "000000000000c03f666666666666ee3f";

TEST(WireFormat, PartialFrameGoldenBytes) {
  std::string payload = net::EncodePartialFrame(GoldenPartialFrame());
  EXPECT_EQ(payload.size(), net::kPartialFrameBytes);
  ExpectGolden(payload, kPartialFrameHex, "PARTIAL frame");
}

TEST(WireFormat, PartialFrameDecodesGoldenBytes) {
  auto decoded = net::DecodePartialFrame(FromHex(kPartialFrameHex));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const net::PartialFrame want = GoldenPartialFrame();
  EXPECT_EQ(decoded->round, want.round);
  EXPECT_EQ(decoded->total_rounds, want.total_rounds);
  EXPECT_EQ(decoded->samples, want.samples);
  EXPECT_EQ(decoded->value, want.value);
  EXPECT_EQ(decoded->ci_half_width, want.ci_half_width);
  EXPECT_EQ(decoded->confidence, want.confidence);
}

TEST(WireFormat, PartialFrameTagDistinguishesFromTextResponses) {
  EXPECT_TRUE(net::IsPartialFrame(net::EncodePartialFrame({})));
  // The tag can never collide with the query server's text responses.
  EXPECT_FALSE(net::IsPartialFrame("ok\nAVG = 100.0"));
  EXPECT_FALSE(net::IsPartialFrame("error: InvalidArgument: nope"));
  EXPECT_FALSE(net::IsPartialFrame(""));
}

TEST(WireFormat, PartialFrameRejectsTruncationAndTrailingBytes) {
  std::string frame = FromHex(kPartialFrameHex);
  EXPECT_TRUE(net::DecodePartialFrame(frame.substr(0, frame.size() - 1))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(net::DecodePartialFrame(frame + "x").status().IsCorruption());
  EXPECT_TRUE(net::DecodePartialFrame("partial?" + frame.substr(8))
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace distributed
}  // namespace isla
