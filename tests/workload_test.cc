// Unit tests for workload/datasets.h — the experiment dataset builders.

#include <gtest/gtest.h>

#include "storage/block.h"
#include "workload/datasets.h"

namespace isla {
namespace workload {
namespace {

TEST(Datasets, NormalHasRequestedShape) {
  auto ds = MakeNormalDataset(1'000'000, 10, 100.0, 20.0, 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->true_mean, 100.0);
  ASSERT_NE(ds->data(), nullptr);
  EXPECT_EQ(ds->data()->num_rows(), 1'000'000u);
  EXPECT_EQ(ds->data()->num_blocks(), 10u);
}

TEST(Datasets, RowsSplitNearEvenly) {
  auto ds = MakeNormalDataset(1003, 10, 100.0, 20.0, 2);
  ASSERT_TRUE(ds.ok());
  uint64_t total = 0;
  for (const auto& b : ds->data()->blocks()) {
    EXPECT_GE(b->size(), 100u);
    EXPECT_LE(b->size(), 101u);
    total += b->size();
  }
  EXPECT_EQ(total, 1003u);
}

TEST(Datasets, ExponentialTrueMeanIsReciprocalGamma) {
  auto ds = MakeExponentialDataset(1'000'000, 5, 0.05, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->true_mean, 20.0);
}

TEST(Datasets, UniformTrueMeanIsMidpoint) {
  auto ds = MakeUniformDataset(1'000'000, 5, 1.0, 199.0, 4);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->true_mean, 100.0);
}

TEST(Datasets, NonIidWeightsTrueMeanByRows) {
  std::vector<NonIidBlockSpec> specs = {{10.0, 1.0, 100}, {20.0, 1.0, 300}};
  auto ds = MakeNonIidDataset(specs, 5);
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(ds->true_mean, 17.5);
  EXPECT_EQ(ds->data()->num_blocks(), 2u);
}

TEST(Datasets, CensusSalaryLikeMatchesHeadlineStats) {
  auto ds = MakeCensusSalaryLike(10, 6);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->data()->num_rows(), 299'285u);  // The real column's size.
  // Calibrated to the paper's mean of 1740.38 within a loose band; the
  // exact mean is the materialized full scan.
  EXPECT_NEAR(ds->true_mean, 1740.0, 300.0);
}

TEST(Datasets, TlcTripLikeIsSkewedAndClustered) {
  auto ds = MakeTlcTripLike(500'000, 10, 7);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->data()->num_rows(), 500'000u);
  // Paper: mean ≈ 4648 after ×1000 scaling.
  EXPECT_NEAR(ds->true_mean, 4648.0, 1200.0);
}

TEST(Datasets, TpchLineitemLikeIsPositive) {
  auto ds = MakeTpchLineitemLike(1'000'000, 10, 8);
  ASSERT_TRUE(ds.ok());
  const auto& block = *ds->data()->blocks()[0];
  for (uint64_t i = 0; i < 100; ++i) EXPECT_GT(block.ValueAt(i), 0.0);
}

TEST(Datasets, MaterializedMatchesGeneratorDistribution) {
  auto ds = MakeMaterializedNormalDataset(100'000, 4, 100.0, 20.0, 9);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->true_mean, 100.0, 0.5);
}

TEST(Datasets, MaterializedCapsRows) {
  auto ds = MakeMaterializedNormalDataset(100'000'000, 4, 100.0, 20.0, 10);
  EXPECT_FALSE(ds.ok());
}

TEST(Datasets, RejectsDegenerateShapes) {
  EXPECT_FALSE(MakeNormalDataset(0, 10, 100.0, 20.0, 1).ok());
  EXPECT_FALSE(MakeNormalDataset(100, 0, 100.0, 20.0, 1).ok());
  EXPECT_FALSE(MakeNormalDataset(5, 10, 100.0, 20.0, 1).ok());
  EXPECT_FALSE(MakeExponentialDataset(100, 2, -0.1, 1).ok());
  EXPECT_FALSE(MakeUniformDataset(100, 2, 5.0, 5.0, 1).ok());
  EXPECT_FALSE(MakeNonIidDataset({}, 1).ok());
}

TEST(Datasets, SeedsChangeData) {
  auto a = MakeNormalDataset(1000, 1, 100.0, 20.0, 11);
  auto b = MakeNormalDataset(1000, 1, 100.0, 20.0, 12);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->data()->blocks()[0]->ValueAt(0),
            b->data()->blocks()[0]->ValueAt(0));
}

TEST(Datasets, SameSeedReproducesData) {
  auto a = MakeNormalDataset(1000, 2, 100.0, 20.0, 13);
  auto b = MakeNormalDataset(1000, 2, 100.0, 20.0, 13);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a->data()->blocks()[1]->ValueAt(i),
              b->data()->blocks()[1]->ValueAt(i));
  }
}

}  // namespace
}  // namespace workload
}  // namespace isla
