// Strict numeric flag parsing shared by the CLI tools. The atof/strtoull
// family silently turns garbage into 0 — `--within abc` would run the
// query at precision 0 instead of failing — so every numeric flag goes
// through std::from_chars and any empty value, trailing garbage, or
// out-of-range number is a fatal usage error (exit 2).

#ifndef ISLA_TOOLS_FLAG_PARSE_H_
#define ISLA_TOOLS_FLAG_PARSE_H_

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace isla {
namespace tools {

[[noreturn]] inline void FlagValueError(const char* flag, const char* value) {
  std::fprintf(stderr, "error: %s needs a number, got '%s'\n", flag, value);
  std::exit(2);
}

inline uint64_t ParseU64Flag(const char* flag, const char* value) {
  uint64_t out = 0;
  const char* end = value + std::strlen(value);
  auto [ptr, ec] = std::from_chars(value, end, out);
  if (ec != std::errc() || ptr != end || end == value) {
    FlagValueError(flag, value);
  }
  return out;
}

inline int64_t ParseI64Flag(const char* flag, const char* value) {
  int64_t out = 0;
  const char* end = value + std::strlen(value);
  auto [ptr, ec] = std::from_chars(value, end, out);
  if (ec != std::errc() || ptr != end || end == value) {
    FlagValueError(flag, value);
  }
  return out;
}

inline double ParseF64Flag(const char* flag, const char* value) {
  double out = 0.0;
  const char* end = value + std::strlen(value);
  auto [ptr, ec] = std::from_chars(value, end, out);
  if (ec != std::errc() || ptr != end || end == value) {
    FlagValueError(flag, value);
  }
  return out;
}

inline uint16_t ParsePortFlag(const char* flag, const char* value) {
  uint64_t out = ParseU64Flag(flag, value);
  if (out > 65535) FlagValueError(flag, value);
  return static_cast<uint16_t>(out);
}

}  // namespace tools
}  // namespace isla

#endif  // ISLA_TOOLS_FLAG_PARSE_H_
