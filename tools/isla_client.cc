// isla_client — TCP client for the ISLA daemons. Two modes:
//
// Query-server session (statements from stdin, one response per line
// group, like isla_shell but over the network):
//
//   $ ./isla_client --port 7100
//   isla> CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e8 BLOCKS 8
//   isla> SET precision 0.2
//   isla> SELECT AVG(value) FROM s
//
// Distributed aggregation driver (the center node of §VII-E): runs one
// AVG aggregation across worker daemons and prints the merged answer:
//
//   $ ./isla_client --workers 127.0.0.1:7101,127.0.0.1:7102 --within 0.1
//
// Worker order on the command line defines worker ids; each daemon must
// have been started with the matching --worker-id.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "distributed/coordinator.h"
#include "net/connection.h"
#include "net/partial.h"
#include "net/tcp_transport.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: isla_client --port P [--host h] [--stats]\n"
               "       isla_client --workers h:p,h:p,... [--within e] "
               "[--confidence b]\n");
}

/// One-shot `SHOW SERVER STATS` probe: connect, print the stats body,
/// exit. For scripts and dashboards that just want the gauges.
int RunStatsProbe(const std::string& host, uint16_t port) {
  auto conn = isla::net::TcpConnect(host, port, /*timeout_millis=*/5'000);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  auto greeting = (*conn)->RecvFrame();
  if (!greeting.ok() || greeting->rfind("error: ", 0) == 0) {
    std::fprintf(stderr, "error: %s\n",
                 greeting.ok() ? greeting->c_str()
                               : greeting.status().ToString().c_str());
    return 1;
  }
  if (!(*conn)->SendFrame("SHOW SERVER STATS").ok()) return 1;
  auto response = (*conn)->RecvFrame();
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->rfind("ok\n", 0) == 0
                          ? response->c_str() + 3
                          : response->c_str());
  (void)(*conn)->SendFrame("quit");
  return 0;
}

int RunSession(const std::string& host, uint16_t port) {
  auto conn = isla::net::TcpConnect(host, port, /*timeout_millis=*/5'000);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  // A single statement may legitimately sample for minutes (ROWS 1e9 at a
  // tight precision); don't let the default I/O deadline cut it off.
  (*conn)->set_deadline_millis(10 * 60 * 1000);
  // The server greets each session with one frame — or, when the session
  // limit is reached, answers with a single "error: ..." frame and
  // closes. Surface that refusal instead of prompting into a dead
  // connection.
  auto greeting = (*conn)->RecvFrame();
  if (!greeting.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 greeting.status().ToString().c_str());
    return 1;
  }
  if (greeting->rfind("error: ", 0) == 0) {
    std::fprintf(stderr, "%s\n", greeting->c_str());
    return 1;
  }
  bool interactive = isatty(fileno(stdin));
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("isla> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r\n");
    std::string statement = line.substr(begin, end - begin + 1);

    isla::Status sent = (*conn)->SendFrame(statement);
    if (!sent.ok()) {
      std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
      return 1;
    }
    // Streaming statements interleave PARTIAL frames before the final
    // "ok\n"/"error: " response — print each round as it lands so the
    // user watches the confidence interval tighten live.
    isla::Result<std::string> response = std::string();
    while (true) {
      response = (*conn)->RecvFrame();
      if (!response.ok() || !isla::net::IsPartialFrame(*response)) break;
      auto frame = isla::net::DecodePartialFrame(*response);
      if (!frame.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     frame.status().ToString().c_str());
        return 1;
      }
      std::printf("~ round %u/%u: %.4f +/- %.4f @%.2f (%llu samples)\n",
                  frame->round, frame->total_rounds, frame->value,
                  frame->ci_half_width, frame->confidence,
                  static_cast<unsigned long long>(frame->samples));
      std::fflush(stdout);
    }
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    // Strip the "ok\n" tag; print errors as-is.
    if (response->rfind("ok\n", 0) == 0) {
      std::printf("%s\n", response->c_str() + 3);
    } else {
      std::printf("%s\n", response->c_str());
    }
    if (statement == "quit" || statement == "exit") break;
  }
  return 0;
}

int RunDistributed(const std::string& workers_arg, double precision,
                   double confidence) {
  std::vector<isla::net::Endpoint> endpoints;
  size_t start = 0;
  while (start <= workers_arg.size()) {
    size_t comma = workers_arg.find(',', start);
    std::string spec =
        workers_arg.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
    if (!spec.empty()) {
      auto endpoint = isla::net::ParseEndpoint(spec);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     endpoint.status().ToString().c_str());
        return 2;
      }
      endpoints.push_back(*endpoint);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "error: --workers needs at least one endpoint\n");
    return 2;
  }

  isla::net::TcpTransport transport(endpoints);
  isla::core::IslaOptions options;
  options.precision = precision;
  options.confidence = confidence;
  isla::distributed::Coordinator coordinator(&transport, options);
  auto r = coordinator.AggregateAvg();
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("AVG = %.6f  (sum=%.6g, rows=%llu, samples=%llu, "
              "workers=%zu)\n",
              r->average, r->sum,
              static_cast<unsigned long long>(r->data_size),
              static_cast<unsigned long long>(r->total_samples),
              endpoints.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string workers;
  uint16_t port = 0;
  double precision = 0.1;
  double confidence = 0.95;
  bool stats_probe = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next("--port")));
    } else if (arg == "--workers") {
      workers = next("--workers");
    } else if (arg == "--within") {
      precision = std::atof(next("--within"));
    } else if (arg == "--confidence") {
      confidence = std::atof(next("--confidence"));
    } else if (arg == "--stats") {
      stats_probe = true;
    } else {
      Usage();
      return 2;
    }
  }

  if (!workers.empty()) return RunDistributed(workers, precision, confidence);
  if (port == 0) {
    Usage();
    return 2;
  }
  if (stats_probe) return RunStatsProbe(host, port);
  return RunSession(host, port);
}
