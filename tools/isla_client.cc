// isla_client — TCP client for the ISLA daemons. Two modes:
//
// Query-server session (statements from stdin, one response per line
// group, like isla_shell but over the network):
//
//   $ ./isla_client --port 7100
//   isla> CREATE TABLE s FROM NORMAL(100, 20) ROWS 1e8 BLOCKS 8
//   isla> SET precision 0.2
//   isla> SELECT AVG(value) FROM s
//
// Distributed aggregation driver (the center node of §VII-E): runs one
// AVG aggregation across worker daemons and prints the merged answer:
//
//   $ ./isla_client --workers 127.0.0.1:7101,127.0.0.1:7102 --within 0.1
//
// Worker order on the command line defines worker ids; each daemon must
// have been started with the matching --worker-id.
//
// Replicated shards: '|' groups replicas of one shard. Every endpoint in
// a group must serve the same shard files under the same --worker-id —
// replicas answer bit-identically, and the coordinator retries, fails
// over, and hedges between them (tune with --hedge-millis):
//
//   $ ./isla_client --workers 'h:7101|h:7201,h:7102|h:7202' --within 0.1
//
// Registry mode replaces the static worker list with dynamic membership:
// the client hosts the registry, workers started with --coordinator
// announce themselves, and the query runs on whoever registered:
//
//   $ ./isla_client --registry-port 7200 --expect-shards 2 --replicas 2

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "distributed/coordinator.h"
#include "distributed/failover.h"
#include "flag_parse.h"
#include "net/connection.h"
#include "net/partial.h"
#include "net/tcp_transport.h"
#include "net/worker_registry.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: isla_client --port P [--host h] [--stats]\n"
               "       isla_client --workers h:p[|h:p...],... [--within e] "
               "[--confidence b]\n"
               "                   [--hedge-millis n]\n"
               "       isla_client --registry-port P --expect-shards N\n"
               "                   [--replicas R] [--wait-millis n] "
               "[--within e]\n");
}

/// One-shot `SHOW SERVER STATS` probe: connect, print the stats body,
/// exit. For scripts and dashboards that just want the gauges.
int RunStatsProbe(const std::string& host, uint16_t port) {
  auto conn = isla::net::TcpConnect(host, port, /*timeout_millis=*/5'000);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  auto greeting = (*conn)->RecvFrame();
  if (!greeting.ok() || greeting->rfind("error: ", 0) == 0) {
    std::fprintf(stderr, "error: %s\n",
                 greeting.ok() ? greeting->c_str()
                               : greeting.status().ToString().c_str());
    return 1;
  }
  if (!(*conn)->SendFrame("SHOW SERVER STATS").ok()) return 1;
  auto response = (*conn)->RecvFrame();
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->rfind("ok\n", 0) == 0
                          ? response->c_str() + 3
                          : response->c_str());
  (void)(*conn)->SendFrame("quit");
  return 0;
}

int RunSession(const std::string& host, uint16_t port) {
  auto conn = isla::net::TcpConnect(host, port, /*timeout_millis=*/5'000);
  if (!conn.ok()) {
    std::fprintf(stderr, "error: %s\n", conn.status().ToString().c_str());
    return 1;
  }
  // A single statement may legitimately sample for minutes (ROWS 1e9 at a
  // tight precision); don't let the default I/O deadline cut it off.
  (*conn)->set_deadline_millis(10 * 60 * 1000);
  // The server greets each session with one frame — or, when the session
  // limit is reached, answers with a single "error: ..." frame and
  // closes. Surface that refusal instead of prompting into a dead
  // connection.
  auto greeting = (*conn)->RecvFrame();
  if (!greeting.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 greeting.status().ToString().c_str());
    return 1;
  }
  if (greeting->rfind("error: ", 0) == 0) {
    std::fprintf(stderr, "%s\n", greeting->c_str());
    return 1;
  }
  bool interactive = isatty(fileno(stdin));
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("isla> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r\n");
    std::string statement = line.substr(begin, end - begin + 1);

    isla::Status sent = (*conn)->SendFrame(statement);
    if (!sent.ok()) {
      std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
      return 1;
    }
    // Streaming statements interleave PARTIAL frames before the final
    // "ok\n"/"error: " response — print each round as it lands so the
    // user watches the confidence interval tighten live.
    isla::Result<std::string> response = std::string();
    while (true) {
      response = (*conn)->RecvFrame();
      if (!response.ok() || !isla::net::IsPartialFrame(*response)) break;
      auto frame = isla::net::DecodePartialFrame(*response);
      if (!frame.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     frame.status().ToString().c_str());
        return 1;
      }
      std::printf("~ round %u/%u: %.4f +/- %.4f @%.2f (%llu samples)\n",
                  frame->round, frame->total_rounds, frame->value,
                  frame->ci_half_width, frame->confidence,
                  static_cast<unsigned long long>(frame->samples));
      std::fflush(stdout);
    }
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    // Strip the "ok\n" tag; print errors as-is.
    if (response->rfind("ok\n", 0) == 0) {
      std::printf("%s\n", response->c_str() + 3);
    } else {
      std::printf("%s\n", response->c_str());
    }
    if (statement == "quit" || statement == "exit") break;
  }
  return 0;
}

/// Runs one distributed AVG over `endpoints` with the given shard →
/// endpoint-index placement, replica failover and hedging on.
int RunWithPlacement(const std::vector<isla::net::Endpoint>& endpoints,
                     std::vector<std::vector<uint64_t>> placement,
                     double precision, double confidence,
                     int64_t hedge_millis, uint64_t placement_epoch = 0) {
  isla::net::TcpTransportOptions transport_options;
  // The cluster paths opt into in-call reconnects: a worker restarted
  // between queries should cost a redial, not a failed query.
  transport_options.reconnect_attempts = 1;
  isla::net::TcpTransport inner(endpoints, transport_options);

  isla::distributed::FailoverOptions failover_options;
  failover_options.placement_epoch = placement_epoch;
  if (hedge_millis > 0) {
    failover_options.hedge_delay_millis =
        static_cast<uint64_t>(hedge_millis);
  } else if (hedge_millis < 0) {
    failover_options.enable_hedging = false;
  }
  size_t n_shards = placement.size();
  isla::distributed::FailoverTransport transport(&inner,
                                                 std::move(placement),
                                                 failover_options);

  isla::core::IslaOptions options;
  options.precision = precision;
  options.confidence = confidence;
  isla::distributed::Coordinator coordinator(&transport, options);
  auto r = coordinator.AggregateAvg();
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("AVG = %.6f  (sum=%.6g, rows=%llu, samples=%llu, "
              "shards=%zu, endpoints=%zu)\n",
              r->average, r->sum,
              static_cast<unsigned long long>(r->data_size),
              static_cast<unsigned long long>(r->total_samples),
              n_shards, endpoints.size());
  const isla::distributed::FailoverCounters& fo = r->failover;
  std::printf("failover: retries=%llu failovers=%llu hedges=%llu "
              "hedge_wins=%llu exhausted=%llu epoch=%llu\n",
              static_cast<unsigned long long>(fo.retries),
              static_cast<unsigned long long>(fo.failovers),
              static_cast<unsigned long long>(fo.hedges),
              static_cast<unsigned long long>(fo.hedge_wins),
              static_cast<unsigned long long>(fo.exhausted),
              static_cast<unsigned long long>(fo.placement_epoch));
  return 0;
}

int RunDistributed(const std::string& workers_arg, double precision,
                   double confidence, int64_t hedge_millis) {
  // Comma separates shards; '|' separates replicas of one shard.
  std::vector<isla::net::Endpoint> endpoints;
  std::vector<std::vector<uint64_t>> placement;
  size_t start = 0;
  while (start <= workers_arg.size()) {
    size_t comma = workers_arg.find(',', start);
    std::string group =
        workers_arg.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
    if (!group.empty()) {
      std::vector<uint64_t> replicas;
      size_t gstart = 0;
      while (gstart <= group.size()) {
        size_t bar = group.find('|', gstart);
        std::string spec =
            group.substr(gstart, bar == std::string::npos
                                     ? std::string::npos
                                     : bar - gstart);
        if (!spec.empty()) {
          auto endpoint = isla::net::ParseEndpoint(spec);
          if (!endpoint.ok()) {
            std::fprintf(stderr, "error: %s\n",
                         endpoint.status().ToString().c_str());
            return 2;
          }
          replicas.push_back(endpoints.size());
          endpoints.push_back(*endpoint);
        }
        if (bar == std::string::npos) break;
        gstart = bar + 1;
      }
      if (!replicas.empty()) placement.push_back(std::move(replicas));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "error: --workers needs at least one endpoint\n");
    return 2;
  }
  return RunWithPlacement(endpoints, std::move(placement), precision,
                          confidence, hedge_millis);
}

int RunRegistryDistributed(uint16_t registry_port, size_t expect_shards,
                           size_t min_replicas, int64_t wait_millis,
                           double precision, double confidence,
                           int64_t hedge_millis) {
  isla::net::WorkerRegistryOptions registry_options;
  registry_options.port = registry_port;
  isla::net::WorkerRegistry registry(registry_options);
  isla::Status st = registry.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("registry on 127.0.0.1:%u, waiting for %zu shard(s) x %zu "
              "replica(s)...\n",
              registry.port(), expect_shards, min_replicas);
  std::fflush(stdout);
  if (!registry.WaitForShards(expect_shards, min_replicas, wait_millis)) {
    std::fprintf(stderr,
                 "error: cluster did not converge within %lld ms\n",
                 static_cast<long long>(wait_millis));
    registry.Stop();
    return 1;
  }

  // Take a placement lease: shard ids must be dense [0, expect_shards) —
  // they double as the positional worker ids the RNG streams derive from.
  // The snapshot is epoch-stamped; the query runs against this frozen
  // membership, and a replica joining mid-query is picked up by the next
  // lease, never by a placement already in flight.
  auto snapshot = registry.SnapshotCluster(expect_shards);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 snapshot.status().ToString().c_str());
    registry.Stop();
    return 1;
  }
  std::printf("placement lease epoch %llu:\n",
              static_cast<unsigned long long>(snapshot->epoch));
  for (size_t s = 0; s < snapshot->placement.size(); ++s) {
    for (uint64_t idx : snapshot->placement[s]) {
      const isla::net::Endpoint& e = snapshot->endpoints[idx];
      std::printf("shard %zu replica: %s:%u\n", s, e.host.c_str(), e.port);
    }
  }
  std::fflush(stdout);
  int rc = RunWithPlacement(snapshot->endpoints,
                            std::move(snapshot->placement), precision,
                            confidence, hedge_millis, snapshot->epoch);
  registry.Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string workers;
  uint16_t port = 0;
  uint16_t registry_port = 0;
  size_t expect_shards = 0;
  size_t replicas = 1;
  int64_t wait_millis = 10'000;
  int64_t hedge_millis = 0;  // 0 = auto (p99-derived); <0 disables hedging.
  double precision = 0.1;
  double confidence = 0.95;
  bool stats_probe = false;
  bool registry_mode = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = isla::tools::ParsePortFlag("--port", next("--port"));
    } else if (arg == "--workers") {
      workers = next("--workers");
    } else if (arg == "--registry-port") {
      registry_port = isla::tools::ParsePortFlag("--registry-port",
                                                 next("--registry-port"));
      registry_mode = true;
    } else if (arg == "--expect-shards") {
      expect_shards = isla::tools::ParseU64Flag("--expect-shards",
                                                next("--expect-shards"));
    } else if (arg == "--replicas") {
      replicas = isla::tools::ParseU64Flag("--replicas", next("--replicas"));
    } else if (arg == "--wait-millis") {
      wait_millis =
          isla::tools::ParseI64Flag("--wait-millis", next("--wait-millis"));
    } else if (arg == "--hedge-millis") {
      hedge_millis =
          isla::tools::ParseI64Flag("--hedge-millis", next("--hedge-millis"));
    } else if (arg == "--no-hedge") {
      hedge_millis = -1;
    } else if (arg == "--within") {
      precision = isla::tools::ParseF64Flag("--within", next("--within"));
    } else if (arg == "--confidence") {
      confidence =
          isla::tools::ParseF64Flag("--confidence", next("--confidence"));
    } else if (arg == "--stats") {
      stats_probe = true;
    } else {
      Usage();
      return 2;
    }
  }

  if (registry_mode) {
    if (expect_shards == 0) {
      std::fprintf(stderr, "error: --registry-port needs --expect-shards\n");
      return 2;
    }
    return RunRegistryDistributed(registry_port, expect_shards, replicas,
                                  wait_millis, precision, confidence,
                                  hedge_millis);
  }
  if (!workers.empty()) {
    return RunDistributed(workers, precision, confidence, hedge_millis);
  }
  if (port == 0) {
    Usage();
    return 2;
  }
  if (stats_probe) return RunStatsProbe(host, port);
  return RunSession(host, port);
}
