// isla_import — converts paper-style text columns (one value per line) into
// the checksummed ISLB block format that FileBlock serves.
//
//   $ ./isla_import input1.txt [input2.txt ...]
//
// Each input.txt becomes input.islb next to it. Exit code 0 only when every
// file converted.

#include <cstdio>
#include <string>

#include "storage/text_io.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s input.txt [more.txt ...]\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string in = argv[i];
    std::string out = in;
    size_t dot = out.rfind('.');
    if (dot != std::string::npos) out.resize(dot);
    out += ".islb";
    auto rows = isla::storage::ConvertTextToBlockFile(in, out);
    if (rows.ok()) {
      std::printf("%s -> %s (%llu rows)\n", in.c_str(), out.c_str(),
                  static_cast<unsigned long long>(rows.value()));
    } else {
      std::fprintf(stderr, "%s: %s\n", in.c_str(),
                   rows.status().ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
