// isla_serverd — the ISLA network daemon. Two roles:
//
// Query server (default): accepts concurrent client sessions speaking the
// mini-SQL dialect, one private Session (catalog + SET-tunable
// IslaOptions) per connection:
//
//   $ ./isla_serverd --port 7100 --precision 0.2
//   listening on 127.0.0.1:7100 (query server)
//
// Worker (the paper's subsidiary): hosts one shard triple behind the
// distributed message protocol, for coordinators using --workers:
//
//   $ ./isla_serverd --worker --shard v0.islb --port 7101
//   $ ./isla_serverd --worker --shard v1.islb --predicate-shard p1.islb
//       --key-shard k1.islb --port 7102 --worker-id 1
//
// Worker ids are positional: a coordinator connecting to
// --workers host:7101,host:7102 addresses them as workers 0 and 1, and the
// daemon must be started with the matching --worker-id so its RNG streams
// line up with the single-node engine's per-block streams (that is what
// makes distributed answers bit-identical). Two workers started with the
// SAME --worker-id and the same shard files are replicas: they produce
// bit-identical answers, which is what lets a coordinator fail over or
// hedge between them freely.
//
// With --coordinator the worker announces its shard to a coordinator-side
// registry (isla_client --registry-port) and keeps heartbeating, so the
// cluster can grow or heal without restarting anything:
//
//   $ ./isla_serverd --worker --shard v0.islb --port 7101
//       --coordinator 127.0.0.1:7200
//
// With --join an *empty* worker pulls its shard from a live replica over
// the worker-to-worker streaming protocol before serving — scaling a
// shard 1→2 replicas with no hand-copied files:
//
//   $ ./isla_serverd --worker --worker-id 0 --join 127.0.0.1:7101
//       --shard-dir /var/lib/isla --coordinator 127.0.0.1:7200
//
// The streamed files land as ISLB blocks under --shard-dir and the worker
// then registers normally; its fingerprint matches the donor's, so the
// registry accepts it as a legitimate replica.
//
// The daemon runs until stdin reaches EOF or SIGINT/SIGTERM arrives, so it
// works both interactively and under a supervisor with a pipe held open.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "distributed/worker.h"
#include "flag_parse.h"
#include "net/query_server.h"
#include "net/shard_streamer.h"
#include "net/tcp_transport.h"
#include "net/worker_server.h"
#include "runtime/kernels/kernels.h"
#include "storage/file_block.h"

namespace {

volatile sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void Usage() {
  std::fprintf(stderr,
               "usage: isla_serverd [--port P] [--precision e] "
               "[--confidence b]\n"
               "                    [--parallelism n] [--max-sessions n] "
               "[--batch-window us]\n"
               "                    [--io-threads n] [--exec-threads n] "
               "[--stats]\n"
               "       isla_serverd --worker --shard v.islb "
               "[--predicate-shard p.islb]\n"
               "                    [--key-shard k.islb] [--worker-id N] "
               "[--port P]\n"
               "                    [--coordinator host:port] "
               "[--advertise host]\n"
               "                    [--heartbeat-millis n]\n"
               "       isla_serverd --worker --worker-id N "
               "--join host:port\n"
               "                    [--shard-dir dir] [--port P] "
               "[--coordinator host:port]\n");
}

/// Blocks until stdin closes or a termination signal arrives, invoking
/// `on_tick` (nullable) roughly every 10 seconds in between.
void WaitForShutdown(const std::function<void()>& on_tick = nullptr) {
  int ticks = 0;
  while (!g_stop) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) {  // Tick (or EINTR from a handled signal).
      if (on_tick && ++ticks >= 50) {
        ticks = 0;
        on_tick();
      }
      continue;
    }
    char buf[256];
    ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
    if (n <= 0) return;  // EOF: supervisor dropped the pipe.
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool worker_mode = false;
  bool print_stats = false;
  uint16_t port = 0;
  uint64_t worker_id = 0;
  std::string shard, predicate_shard, key_shard;
  std::string coordinator_spec;
  std::string join_spec;
  std::string shard_dir = ".";
  std::string advertise_host = "127.0.0.1";
  int64_t heartbeat_millis = 500;
  isla::net::QueryServerOptions query_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--port") {
      port = isla::tools::ParsePortFlag("--port", next("--port"));
    } else if (arg == "--worker-id") {
      worker_id = isla::tools::ParseU64Flag("--worker-id",
                                            next("--worker-id"));
    } else if (arg == "--shard") {
      shard = next("--shard");
    } else if (arg == "--predicate-shard") {
      predicate_shard = next("--predicate-shard");
    } else if (arg == "--key-shard") {
      key_shard = next("--key-shard");
    } else if (arg == "--coordinator") {
      coordinator_spec = next("--coordinator");
    } else if (arg == "--join") {
      join_spec = next("--join");
    } else if (arg == "--shard-dir") {
      shard_dir = next("--shard-dir");
    } else if (arg == "--advertise") {
      advertise_host = next("--advertise");
    } else if (arg == "--heartbeat-millis") {
      heartbeat_millis = isla::tools::ParseI64Flag("--heartbeat-millis",
                                                   next("--heartbeat-millis"));
    } else if (arg == "--precision") {
      query_options.session_defaults.precision =
          isla::tools::ParseF64Flag("--precision", next("--precision"));
    } else if (arg == "--confidence") {
      query_options.session_defaults.confidence =
          isla::tools::ParseF64Flag("--confidence", next("--confidence"));
    } else if (arg == "--parallelism") {
      query_options.session_defaults.parallelism = static_cast<uint32_t>(
          isla::tools::ParseU64Flag("--parallelism", next("--parallelism")));
    } else if (arg == "--max-sessions") {
      query_options.max_sessions =
          isla::tools::ParseU64Flag("--max-sessions", next("--max-sessions"));
    } else if (arg == "--batch-window") {
      // Shared-scan admission window in microseconds; 0 disables batching
      // (the pilot/result caches stay on).
      query_options.scheduler.admission_window_micros =
          isla::tools::ParseI64Flag("--batch-window", next("--batch-window"));
    } else if (arg == "--io-threads") {
      query_options.io_threads = static_cast<unsigned>(
          isla::tools::ParseU64Flag("--io-threads", next("--io-threads")));
    } else if (arg == "--exec-threads") {
      query_options.exec_threads = static_cast<unsigned>(
          isla::tools::ParseU64Flag("--exec-threads", next("--exec-threads")));
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      Usage();
      return 2;
    }
  }

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  // Logged before the listening line so deployments can spot a
  // scalar-fallback misconfiguration (stale ISLA_KERNELS, wrong container
  // image for the host CPU) in the first line of the daemon's output.
  std::printf("kernel dispatch: %s (cpu: %s)\n",
              std::string(isla::runtime::kernels::ActiveLevelName()).c_str(),
              isla::runtime::kernels::CpuFeatureString().c_str());

  if (worker_mode) {
    if (shard.empty() && join_spec.empty()) {
      std::fprintf(stderr, "error: --worker needs --shard or --join\n");
      return 2;
    }
    if (!join_spec.empty() && shard.empty()) {
      // Empty worker joining the cluster: pull the shard from a live
      // replica first, then serve it like any hand-provisioned worker. A
      // stream that dies leaves no files behind and the daemon exits
      // non-zero — a supervisor restart is a clean retry.
      auto donor = isla::net::ParseEndpoint(join_spec);
      if (!donor.ok()) {
        std::fprintf(stderr, "error: --join: %s\n",
                     donor.status().ToString().c_str());
        return 2;
      }
      auto streamed =
          isla::net::FetchShard(*donor, worker_id, shard_dir);
      if (!streamed.ok()) {
        std::fprintf(stderr, "error: join stream failed: %s\n",
                     streamed.status().ToString().c_str());
        return 1;
      }
      shard = streamed->values_path;
      predicate_shard = streamed->predicate_path;
      key_shard = streamed->keys_path;
      std::printf("joined shard %llu from %s (%llu rows, %llu chunks)\n",
                  static_cast<unsigned long long>(worker_id),
                  join_spec.c_str(),
                  static_cast<unsigned long long>(streamed->rows),
                  static_cast<unsigned long long>(streamed->chunks));
    }
    auto open = [](const std::string& path)
        -> isla::storage::BlockPtr {
      if (path.empty()) return nullptr;
      auto block = isla::storage::FileBlock::Open(path);
      if (!block.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     block.status().ToString().c_str());
        std::exit(1);
      }
      return *block;
    };
    isla::storage::BlockPtr values = open(shard);
    auto worker = std::make_unique<isla::distributed::Worker>(
        worker_id, values, open(predicate_shard), open(key_shard));

    isla::net::WorkerServerOptions options;
    options.port = port;
    if (!coordinator_spec.empty()) {
      auto endpoint = isla::net::ParseEndpoint(coordinator_spec);
      if (!endpoint.ok()) {
        std::fprintf(stderr, "error: --coordinator: %s\n",
                     endpoint.status().ToString().c_str());
        return 2;
      }
      options.coordinator_host = endpoint->host;
      options.coordinator_port = endpoint->port;
      options.advertised_host = advertise_host;
      options.heartbeat_millis = heartbeat_millis;
    }
    isla::net::WorkerServer server(std::move(worker), options);
    isla::Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u (worker %llu, %llu rows)\n",
                server.port(),
                static_cast<unsigned long long>(worker_id),
                static_cast<unsigned long long>(values->size()));
    if (!coordinator_spec.empty()) {
      std::printf("registering shard %llu with %s (heartbeat %lld ms)\n",
                  static_cast<unsigned long long>(worker_id),
                  coordinator_spec.c_str(),
                  static_cast<long long>(heartbeat_millis));
    }
    std::fflush(stdout);
    WaitForShutdown();
    server.Stop();
    return 0;
  }

  query_options.port = port;
  isla::net::QueryServer server(query_options);
  isla::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u (query server)\n", server.port());
  std::fflush(stdout);
  if (print_stats) {
    // The same body `SHOW SERVER STATS` returns, on a 10s ticker —
    // supervisor-friendly introspection without opening a session.
    WaitForShutdown([&server] {
      std::printf("--- server stats ---\n%s\n", server.StatsText().c_str());
      std::fflush(stdout);
    });
  } else {
    WaitForShutdown();
  }
  server.Stop();
  return 0;
}
