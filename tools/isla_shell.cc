// isla_shell — an interactive REPL over the ISLA engine.
//
//   $ ./isla_shell
//   isla> CREATE TABLE sensors FROM NORMAL(100, 20) ROWS 1e9 BLOCKS 10 GROUPS 4
//   isla> SELECT AVG(value) FROM sensors WITHIN 0.1 CONFIDENCE 0.95
//   isla> SELECT AVG(value) FROM sensors WHERE value >= 100 GROUP BY grp WITHIN 0.5
//   isla> SELECT COUNT(value) FROM sensors WHERE value < 80
//   isla> DESCRIBE sensors
//   isla> help
//
// Reads statements line by line from stdin; also usable non-interactively:
//   $ echo "SHOW TABLES" | ./isla_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "engine/session.h"

namespace {

constexpr char kHelp[] = R"(statements:
  CREATE TABLE t FROM NORMAL(mu, sigma) ROWS n BLOCKS b [SEED s] [GROUPS g]
  CREATE TABLE t FROM EXPONENTIAL(gamma) ROWS n BLOCKS b [SEED s] [GROUPS g]
  CREATE TABLE t FROM UNIFORM(lo, hi) ROWS n BLOCKS b [SEED s] [GROUPS g]
  CREATE TABLE t FROM FILES('a.islb', 'b.islb', ...)
  DROP TABLE t
  SHOW TABLES
  DESCRIBE t
  SELECT AVG(c)|SUM(c)|COUNT(c) FROM t
         [WHERE c (=|!=|<>|<|<=|>|>=) literal] [GROUP BY c]
         [WITHIN e] [CONFIDENCE b]
         [USING isla|isla_noniid|uniform|stratified|mv|mvb|exact]
  SET precision|confidence|parallelism|seed|pilot|rate_scale v
  SHOW SETTINGS
  GROUPS g adds a row-aligned key column 'grp' with keys {0..g-1};
  WHERE/GROUP BY/COUNT run the shared-scan grouped sampler with a
  per-group (e, b) precision contract.
  help | quit)";

}  // namespace

int main() {
  isla::engine::Session session;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("ISLA approximate aggregation shell — 'help' for syntax\n");
  }

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("isla> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Trim.
    size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r\n");
    std::string statement = line.substr(begin, end - begin + 1);

    if (statement == "quit" || statement == "exit") break;
    if (statement == "help") {
      std::printf("%s\n", kHelp);
      continue;
    }
    auto result = session.Execute(statement);
    if (result.ok()) {
      std::printf("%s\n", result->c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  }
  return 0;
}
